package perf

import (
	"math"
	"testing"

	"extdict/internal/cluster"
	"extdict/internal/dataset"
	"extdict/internal/dist"
	"extdict/internal/exd"
	"extdict/internal/rng"
)

func TestObjectiveStrings(t *testing.T) {
	if Runtime.String() != "runtime" || Energy.String() != "energy" || Memory.String() != "memory" {
		t.Fatal("objective names wrong")
	}
	if Objective(99).String() != "unknown" {
		t.Fatal("unknown objective not handled")
	}
}

func TestCostSelectsObjective(t *testing.T) {
	e := Estimate{Time: 1, EnergyJ: 2, MemoryWordsPerRank: 3}
	if e.Cost(Runtime) != 1 || e.Cost(Energy) != 2 || e.Cost(Memory) != 3 {
		t.Fatal("Cost dispatch wrong")
	}
}

func TestPredictTransformedCommunicationBound(t *testing.T) {
	plat := cluster.NewPlatform(2, 4)
	e1 := PredictTransformed(100, 1000, 40, 5000, plat) // L < M
	if e1.PathWords != 80 {
		t.Fatalf("Case 1 words %v, want 80", e1.PathWords)
	}
	e2 := PredictTransformed(100, 1000, 300, 5000, plat) // L > M
	if e2.PathWords != 200 {
		t.Fatalf("Case 2 words %v, want 200", e2.PathWords)
	}
}

func TestPredictTransformedMatchesSimulator(t *testing.T) {
	// Fig. 8's claim: the closed-form Eq. 2 estimate tracks the simulated
	// bulk-synchronous cost. With perfectly balanced flop counts they
	// agree to within the load-imbalance slack of the nnz partition.
	u, err := dataset.GenerateUnion(
		dataset.UnionParams{M: 48, N: 400, Ks: []int{4, 5}}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []int{30, 120} {
		tr, err := exd.Fit(u.A, exd.Params{L: l, Epsilon: 0.05, Seed: 2, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, plat := range cluster.PaperPlatforms()[:3] {
			comm := cluster.NewComm(plat)
			g, err := dist.NewExDGram(comm, tr.D, tr.C)
			if err != nil {
				t.Fatal(err)
			}
			x := make([]float64, 400)
			for i := range x {
				x[i] = 1
			}
			y := make([]float64, 400)
			st := g.Apply(x, y)
			pred := PredictTransformed(48, 400, l, tr.C.NNZ(), plat)

			if math.Abs(pred.PathWords-float64(st.PathWords)) > 0 {
				t.Fatalf("L=%d %s: predicted words %v, simulated %d",
					l, plat.Topology, pred.PathWords, st.PathWords)
			}
			if math.Abs(pred.FlopsTotal-float64(st.TotalFlops))/pred.FlopsTotal > 1e-9 {
				t.Fatalf("L=%d %s: predicted flops %v, simulated %d",
					l, plat.Topology, pred.FlopsTotal, st.TotalFlops)
			}
			rel := math.Abs(pred.Time-st.ModeledTime) / st.ModeledTime
			if rel > 0.25 { // nnz partition imbalance is the only slack
				t.Fatalf("L=%d %s: predicted %v, simulated %v (rel %v)",
					l, plat.Topology, pred.Time, st.ModeledTime, rel)
			}
		}
	}
}

func TestPredictDenseMatchesSimulator(t *testing.T) {
	u, err := dataset.GenerateUnion(
		dataset.UnionParams{M: 40, N: 320, Ks: []int{4}}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	plat := cluster.NewPlatform(2, 4)
	comm := cluster.NewComm(plat)
	g := dist.NewDenseGram(comm, u.A)
	x := make([]float64, 320)
	y := make([]float64, 320)
	st := g.Apply(x, y)
	pred := PredictDense(40, 320, plat)
	if pred.PathWords != float64(st.PathWords) {
		t.Fatalf("words %v vs %d", pred.PathWords, st.PathWords)
	}
	if pred.FlopsTotal != float64(st.TotalFlops) {
		t.Fatalf("flops %v vs %d", pred.FlopsTotal, st.TotalFlops)
	}
	rel := math.Abs(pred.Time-st.ModeledTime) / st.ModeledTime
	if rel > 0.05 {
		t.Fatalf("time %v vs %v", pred.Time, st.ModeledTime)
	}
}

func TestTransformedBeatsDenseWhenSparse(t *testing.T) {
	// The headline trade: with nnz ≪ M·N, the transformed iteration must
	// be predicted far cheaper than the dense one.
	plat := cluster.NewPlatform(8, 8)
	m, n := 200, 100000
	dense := PredictDense(m, n, plat)
	exdE := PredictTransformed(m, n, 400, 5*n, plat) // α = 5
	if exdE.Time >= dense.Time {
		t.Fatalf("transformed %v not cheaper than dense %v", exdE.Time, dense.Time)
	}
	if exdE.MemoryWordsPerRank >= dense.MemoryWordsPerRank {
		t.Fatal("transformed memory not lower")
	}
}

func TestCommunicationComputeTradeoff(t *testing.T) {
	// Eq. 2's L trade-off: growing L raises communication (up to M) and
	// dictionary flops; the model must be monotone in L for fixed nnz.
	plat := cluster.NewPlatform(8, 8)
	prev := 0.0
	for _, l := range []int{50, 100, 200, 400} {
		e := PredictTransformed(300, 50000, l, 200000, plat)
		if e.Time <= prev {
			t.Fatalf("cost not increasing in L at L=%d", l)
		}
		prev = e.Time
	}
}

func TestPredictSGD(t *testing.T) {
	plat := cluster.NewPlatform(2, 4)
	e := PredictSGD(100, 1000, 64, plat)
	if e.PathWords != 128 {
		t.Fatalf("SGD words %v", e.PathWords)
	}
	if e.FlopsTotal != 4*64*1000 {
		t.Fatalf("SGD flops %v", e.FlopsTotal)
	}
	// SGD per-iteration must be cheaper than a dense full iteration.
	if d := PredictDense(5000, 1000, plat); e.Time >= d.Time {
		t.Fatal("SGD iteration not cheaper than dense")
	}
}

// TestMemoryEquationBaselines pins the corrected per-rank resident-set
// formulas of the baseline predictors: the dense iteration holds its M×N/P
// column block plus the M-length partial product, and SGD holds the full
// M×N data matrix on every rank plus the batch buffer. Both are the
// allocmodel polynomials in words (TestPerfMemoryAgreesWithCapacityModel
// in internal/lint pins the byte-level agreement).
func TestMemoryEquationBaselines(t *testing.T) {
	plat := cluster.NewPlatform(2, 4) // P = 8
	if e, want := PredictDense(100, 6400, plat), 100.0*6400/8+100; e.MemoryWordsPerRank != want {
		t.Fatalf("dense memory %v, want %v", e.MemoryWordsPerRank, want)
	}
	if e, want := PredictSGD(100, 6400, 64, plat), 100.0*6400+64; e.MemoryWordsPerRank != want {
		t.Fatalf("sgd memory %v, want %v", e.MemoryWordsPerRank, want)
	}
}

func TestMemoryEquation(t *testing.T) {
	plat := cluster.NewPlatform(8, 8) // P = 64
	e := PredictTransformed(100, 6400, 50, 32000, plat)
	want := 100.0*50 + 2*32000.0/64 + 6400.0/64 + 100 + 2*50 + 1
	if e.MemoryWordsPerRank != want {
		t.Fatalf("memory %v, want %v", e.MemoryWordsPerRank, want)
	}
}

func TestSingleCoreNoCommTerm(t *testing.T) {
	plat := cluster.NewPlatform(1, 1)
	e := PredictTransformed(100, 1000, 50, 3000, plat)
	// With P=1 the simulator still executes the collectives (they are
	// no-ops data-wise) but the word term stays; what must vanish is the
	// parallel speedup. Check flop terms dominate at this scale.
	if e.FlopsCritical != 4*3000+4*100*50 {
		t.Fatalf("critical flops %v", e.FlopsCritical)
	}
}
