// Package dist implements the paper's distributed computing model
// (Algorithm 2): iterative Gram-matrix products executed across the ranks of
// a simulated cluster, with the exact data partitioning, replication, and
// reduce/broadcast schedule the paper proves communication-optimal.
//
// All operators expose the same Gram product y = AᵀA·x (or its transformed
// equivalent (DC)ᵀDC·x), so the learning algorithms in the solver package
// are agnostic to which representation — raw data, ExD, or any baseline
// projection — backs the iteration. That interchangeability is the
// framework's central claim.
package dist

import (
	"fmt"

	"extdict/internal/cluster"
	"extdict/internal/mat"
	"extdict/internal/sparse"
)

// Operator applies one distributed Gram-matrix product.
type Operator interface {
	// Dim returns the dimension N of the operator (columns of A).
	Dim() int
	// Apply computes y = G·x as one distributed iteration and returns the
	// iteration's statistics. x and y must have length Dim; y is
	// overwritten. Implementations must tolerate x aliasing y being false
	// (never alias them).
	Apply(x, y []float64) cluster.Stats
	// Name identifies the operator for reports.
	Name() string
}

// BlockRange returns the half-open column range [lo, hi) that rank i of p
// owns under the paper's iN/P partitioning.
func BlockRange(n, p, i int) (lo, hi int) {
	return i * n / p, (i + 1) * n / p
}

// WeightedBlockRanges partitions [0, n) into len(weights) contiguous ranges
// whose sizes are proportional to the weights — the load-balanced mapping
// for heterogeneous platforms where ranks differ in flop rate. With uniform
// weights it reduces exactly to BlockRange.
func WeightedBlockRanges(n int, weights []float64) [][2]int {
	p := len(weights)
	out := make([][2]int, p)
	var total float64
	for _, w := range weights {
		total += w
	}
	acc := 0.0
	prev := 0
	for i, w := range weights {
		acc += w
		hi := int(acc / total * float64(n))
		if i == p-1 {
			hi = n
		}
		if hi < prev {
			hi = prev
		}
		out[i] = [2]int{prev, hi}
		prev = hi
	}
	return out
}

// rangesFor partitions n columns across the communicator's ranks,
// load-balanced by rank speed on heterogeneous platforms. It asks the
// communicator — not the platform — for the speeds, so a communicator
// shrunk after a rank crash partitions over exactly the surviving ranks.
func rangesFor(comm *cluster.Comm, n int) [][2]int {
	return WeightedBlockRanges(n, comm.RankSpeeds())
}

// DenseGram is the untransformed baseline: y = AᵀA·x with A partitioned by
// columns across ranks. Each iteration computes v_i = A_i·x_i locally,
// allreduces the M-vector v = Σv_i, then computes y_i = A_iᵀ·v — moving
// min-communication M words on the critical path.
type DenseGram struct {
	comm    *cluster.Comm
	blocks  []*mat.Dense // per-rank column blocks of A
	ranges  [][2]int     // per-rank column ranges (speed-weighted)
	scratch [][]float64  // per-rank M-vector v_i; Apply runs allocation-free
	n, m    int
}

// NewDenseGram partitions a (M×N) across the communicator's ranks.
func NewDenseGram(comm *cluster.Comm, a *mat.Dense) *DenseGram {
	p := comm.P()
	g := &DenseGram{
		comm: comm, n: a.Cols, m: a.Rows,
		blocks:  make([]*mat.Dense, p),
		ranges:  rangesFor(comm, a.Cols),
		scratch: make([][]float64, p),
	}
	for i := 0; i < p; i++ {
		g.blocks[i] = a.ColRange(g.ranges[i][0], g.ranges[i][1])
		g.scratch[i] = make([]float64, a.Rows)
	}
	return g
}

// Dim implements Operator.
func (g *DenseGram) Dim() int { return g.n }

// Name implements Operator.
func (g *DenseGram) Name() string { return "AᵀA" }

// Apply implements Operator.
func (g *DenseGram) Apply(x, y []float64) cluster.Stats {
	if len(x) != g.n || len(y) != g.n {
		panic("dist: DenseGram.Apply length mismatch")
	}
	return g.comm.Run(func(r *cluster.Rank) {
		lo, hi := g.ranges[r.ID][0], g.ranges[r.ID][1]
		blk := g.blocks[r.ID]

		// Resident set (Eq. 4): the rank's M×n_i column window of A plus its
		// M-vector scratch — established at construction, live for the run.
		r.AddResident(8 * (int64(g.m)*int64(hi-lo) + int64(g.m)))

		// v_i = A_i·x_i  (2·M·n_i flops: multiply + add per entry). The
		// pool-parallel kernel splits rows across idle cores; the flop count
		// is the serial contract. Memory traffic: the block streams once plus
		// the input and output vectors, 8·(M·n_i + M + n_i) bytes.
		v := blk.ParMulVec(x[lo:hi], g.scratch[r.ID])
		r.AddFlops(2 * int64(g.m) * int64(hi-lo))
		r.AddBytes(8 * (int64(g.m)*int64(hi-lo) + int64(g.m) + int64(hi-lo)))

		// v = Σ v_i across ranks; everyone needs it for step 2.
		r.Allreduce(v)

		// y_i = A_iᵀ·v.
		blk.ParMulVecT(v, y[lo:hi])
		r.AddFlops(2 * int64(g.m) * int64(hi-lo))
		r.AddBytes(8 * (int64(g.m)*int64(hi-lo) + int64(g.m) + int64(hi-lo)))
	})
}

// ExDGram executes Algorithm 2 on a transformed pair (D, C):
// y = Cᵀ·Dᵀ·D·C·x. The schedule depends on the regime:
//
//   - Case 1 (L ≤ M): D is stored only on rank 0. Ranks reduce the
//     L-vector v¹ = Σ C_i·x_i to rank 0, which computes v³ = Dᵀ(D·v¹)
//     alone and broadcasts the L-vector back; ranks finish with C_iᵀ·v³.
//     Critical-path words: 2·L.
//
//   - Case 2 (L > M): D is replicated on every rank. Ranks compute
//     v² = D·(C_i·x_i) locally, reduce the M-vector to rank 0, get the
//     M-vector back, and redundantly compute C_iᵀ·(Dᵀ·v). Critical-path
//     words: 2·M.
//
// Either way the communicated volume is 2·min(M, L) per iteration — the
// paper's optimal bound (§VI-B).
type ExDGram struct {
	comm    *cluster.Comm
	d       *mat.Dense
	blocks  []*sparse.CSC // per-rank column blocks of C
	ranges  [][2]int      // per-rank column ranges (speed-weighted)
	nnz     []int64       // per-rank nnz
	scratch []exdScratch  // per-rank buffers; Apply runs allocation-free
	n       int
	l, m    int
	name    string
}

// exdScratch holds one rank's reusable vectors for both Algorithm 2 cases:
// two L-vectors (v¹ and, in Case 2, Dᵀ·v) and one M-vector (D·v¹).
type exdScratch struct {
	vl1, vl2 []float64
	vm       []float64
}

// NewExDGram partitions C by columns and places D according to the case.
func NewExDGram(comm *cluster.Comm, d *mat.Dense, c *sparse.CSC) (*ExDGram, error) {
	return NewTransformedGram(comm, d, c, "ExD")
}

// NewTransformedGram builds the Algorithm 2 operator for any projection
// A ≈ D·C (ExD or a baseline transform), labeled for reports.
func NewTransformedGram(comm *cluster.Comm, d *mat.Dense, c *sparse.CSC, name string) (*ExDGram, error) {
	if d.Cols != c.Rows {
		return nil, fmt.Errorf("dist: D is %dx%d but C has %d rows", d.Rows, d.Cols, c.Rows)
	}
	p := comm.P()
	g := &ExDGram{
		comm: comm, d: d, n: c.Cols, l: d.Cols, m: d.Rows,
		blocks:  make([]*sparse.CSC, p),
		ranges:  rangesFor(comm, c.Cols),
		nnz:     make([]int64, p),
		scratch: make([]exdScratch, p),
		name:    name,
	}
	for i := 0; i < p; i++ {
		g.blocks[i] = c.ColSliceRange(g.ranges[i][0], g.ranges[i][1])
		g.nnz[i] = int64(g.blocks[i].NNZ())
		g.scratch[i] = exdScratch{
			vl1: make([]float64, g.l),
			vl2: make([]float64, g.l),
			vm:  make([]float64, g.m),
		}
	}
	return g, nil
}

// Dim implements Operator.
func (g *ExDGram) Dim() int { return g.n }

// Name implements Operator.
func (g *ExDGram) Name() string { return g.name }

// CaseTwo reports whether the replicated-dictionary schedule is in use.
func (g *ExDGram) CaseTwo() bool { return g.l > g.m }

// Apply implements Operator.
func (g *ExDGram) Apply(x, y []float64) cluster.Stats {
	if len(x) != g.n || len(y) != g.n {
		panic("dist: ExDGram.Apply length mismatch")
	}
	if g.CaseTwo() {
		return g.comm.Run(func(r *cluster.Rank) { g.applyCase2(r, x, y) })
	}
	return g.comm.Run(func(r *cluster.Rank) { g.applyCase1(r, x, y) })
}

// applyCase1 is Algorithm 2, Case 1 (L ≤ M): D lives on rank 0 only.
func (g *ExDGram) applyCase1(r *cluster.Rank, x, y []float64) {
	lo, hi := g.ranges[r.ID][0], g.ranges[r.ID][1]
	blk := g.blocks[r.ID]

	// Resident set (Eq. 4, Case 1): the rank's CSC block — value and
	// row-index payload 16·nnz_i plus the column-pointer array — and its
	// constructor scratch (two L-vectors, one M-vector). D itself joins
	// only rank 0's resident set below.
	r.AddResident(16*g.nnz[r.ID] + 8*(int64(hi-lo)+1) + 16*int64(g.l) + 8*int64(g.m))

	// Step 1: v¹_i = C_i·x_i (sparse: 2·nnz_i flops; traffic is the CSC
	// payload 16·nnz_i plus the dense vectors and column-pointer array).
	v1 := blk.MulVec(x[lo:hi], g.scratch[r.ID].vl1)
	r.AddFlops(2 * g.nnz[r.ID])
	r.AddBytes(16*g.nnz[r.ID] + 8*(2*int64(hi-lo)+int64(g.l)+1))

	// Steps 3-4: reduce v¹ to rank 0 (L words on the path).
	r.Reduce(v1, 0)

	v3 := v1
	if r.ID == 0 {
		// Steps 4-5 on rank 0 only: v² = D·v¹ then v³ = Dᵀ·v². The M×L
		// dictionary is resident here and nowhere else — the memory saving
		// that defines Case 1.
		v2 := g.d.ParMulVec(v1, g.scratch[r.ID].vm)
		g.d.ParMulVecT(v2, v3)
		r.AddFlops(2 * 2 * int64(g.m) * int64(g.l))
		r.AddBytes(2 * 8 * (int64(g.m)*int64(g.l) + int64(g.m) + int64(g.l)))
		r.AddResident(8 * int64(g.m) * int64(g.l))
	}

	// Step 6: broadcast v³ (L words).
	r.Broadcast(v3, 0)

	// Step 7: y_i = C_iᵀ·v³.
	blk.MulVecT(v3, y[lo:hi])
	r.AddFlops(2 * g.nnz[r.ID])
	r.AddBytes(16*g.nnz[r.ID] + 8*(int64(g.l)+2*int64(hi-lo)+1))
}

// applyCase2 is Algorithm 2, Case 2 (L > M): D replicated everywhere.
func (g *ExDGram) applyCase2(r *cluster.Rank, x, y []float64) {
	lo, hi := g.ranges[r.ID][0], g.ranges[r.ID][1]
	blk := g.blocks[r.ID]

	// Resident set (Eq. 4, Case 2): the rank's CSC block payload and
	// column pointers plus its constructor scratch, as in Case 1.
	r.AddResident(16*g.nnz[r.ID] + 8*(int64(hi-lo)+1) + 16*int64(g.l) + 8*int64(g.m))

	// Step 1: v¹_i = C_i·x_i.
	v1 := blk.MulVec(x[lo:hi], g.scratch[r.ID].vl1)
	r.AddFlops(2 * g.nnz[r.ID])
	r.AddBytes(16*g.nnz[r.ID] + 8*(2*int64(hi-lo)+int64(g.l)+1))

	// Step 3: v²_i = D·v¹_i locally (the replication saves words later).
	// The M×L dictionary replica joins every rank's resident set — the
	// memory price Case 2 pays for its 2·M communication bound.
	v2 := g.d.ParMulVec(v1, g.scratch[r.ID].vm)
	r.AddFlops(2 * int64(g.m) * int64(g.l))
	r.AddBytes(8 * (int64(g.m)*int64(g.l) + int64(g.m) + int64(g.l)))
	r.AddResident(8 * int64(g.m) * int64(g.l))

	// Steps 4-6: v = Σ v²_i, everywhere (M words each way).
	r.Allreduce(v2)

	// Step 7: y_i = C_iᵀ·(Dᵀ·v) — the Dᵀ·v multiply is redundant on every
	// rank; that is the price Case 2 pays to keep communication at M.
	w := g.d.ParMulVecT(v2, g.scratch[r.ID].vl2)
	r.AddFlops(2 * int64(g.m) * int64(g.l))
	r.AddBytes(8 * (int64(g.m)*int64(g.l) + int64(g.m) + int64(g.l)))
	blk.MulVecT(w, y[lo:hi])
	r.AddFlops(2 * g.nnz[r.ID])
	r.AddBytes(16*g.nnz[r.ID] + 8*(int64(g.l)+2*int64(hi-lo)+1))
}
