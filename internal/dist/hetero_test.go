package dist

import (
	"math"
	"testing"

	"extdict/internal/cluster"
	"extdict/internal/rng"
)

func heteroPlatform(speeds ...float64) cluster.Platform {
	p := cluster.NewPlatform(len(speeds), 1)
	p.Cost.NodeSpeed = speeds
	return p
}

func TestWeightedBlockRangesProperties(t *testing.T) {
	cases := []struct {
		n       int
		weights []float64
	}{
		{100, []float64{1, 1, 1, 1}},
		{100, []float64{3, 1}},
		{7, []float64{1, 2, 4}},
		{5, []float64{10, 0.1, 0.1}},
		{0, []float64{1, 1}},
	}
	for _, c := range cases {
		ranges := WeightedBlockRanges(c.n, c.weights)
		prev := 0
		for i, rg := range ranges {
			if rg[0] != prev || rg[1] < rg[0] {
				t.Fatalf("n=%d w=%v: range %d = %v after %d", c.n, c.weights, i, rg, prev)
			}
			prev = rg[1]
		}
		if prev != c.n {
			t.Fatalf("n=%d w=%v: coverage ends at %d", c.n, c.weights, prev)
		}
	}
	// Uniform weights must reduce exactly to BlockRange.
	ranges := WeightedBlockRanges(97, []float64{1, 1, 1, 1, 1})
	for i, rg := range ranges {
		lo, hi := BlockRange(97, 5, i)
		if rg[0] != lo || rg[1] != hi {
			t.Fatalf("uniform weighted ranges diverge at %d: %v vs [%d,%d)", i, rg, lo, hi)
		}
	}
}

func TestWeightedBlockRangesProportional(t *testing.T) {
	ranges := WeightedBlockRanges(400, []float64{3, 1})
	if sz := ranges[0][1] - ranges[0][0]; sz != 300 {
		t.Fatalf("fast rank got %d of 400 columns, want 300", sz)
	}
}

func TestPlatformValidationHeterogeneous(t *testing.T) {
	p := cluster.NewPlatform(2, 2)
	p.Cost.NodeSpeed = []float64{1} // wrong length
	if err := p.Validate(); err == nil {
		t.Fatal("wrong NodeSpeed length accepted")
	}
	p.Cost.NodeSpeed = []float64{1, -1}
	if err := p.Validate(); err == nil {
		t.Fatal("negative speed accepted")
	}
	p.Cost.NodeSpeed = []float64{1, 4}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.Heterogeneous() {
		t.Fatal("Heterogeneous() false for distinct speeds")
	}
	if p.RankSpeed(0) != 1 || p.RankSpeed(3) != 4 {
		t.Fatalf("rank speeds %v %v", p.RankSpeed(0), p.RankSpeed(3))
	}
	uniform := cluster.NewPlatform(2, 2)
	if uniform.Heterogeneous() {
		t.Fatal("homogeneous platform flagged heterogeneous")
	}
}

func TestHeterogeneousResultUnchanged(t *testing.T) {
	// Load balancing must not change WHAT is computed, only how it is
	// split: results on heterogeneous and homogeneous platforms agree.
	a := testData(t, 24, 90, 41)
	x := randVec(rng.New(42), 90)

	even := NewDenseGram(cluster.NewComm(cluster.NewPlatform(4, 1)), a)
	skew := NewDenseGram(cluster.NewComm(heteroPlatform(1, 2, 4, 8)), a)
	y1 := make([]float64, 90)
	y2 := make([]float64, 90)
	applyWatched(t, even, x, y1)
	applyWatched(t, skew, x, y2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-10 {
			t.Fatalf("heterogeneous partitioning changed the product at %d", i)
		}
	}
}

func TestHeterogeneousLoadBalancingPays(t *testing.T) {
	// On a cluster with one slow node, speed-proportional partitioning
	// must beat the naive even split in modeled time: with an even split
	// the slow node is the critical path.
	a := testData(t, 32, 800, 43)
	x := randVec(rng.New(44), 800)
	y := make([]float64, 800)

	slowNode := heteroPlatform(1, 4, 4, 4)

	// Balanced: the operators use speed-weighted partitioning.
	balanced := NewDenseGram(cluster.NewComm(slowNode), a)
	stBal := applyWatched(t, balanced, x, y)

	// Naive: fake uniform weights by marking the platform homogeneous for
	// partitioning but running on the heterogeneous communicator. Build
	// the operator on a homogeneous platform, then transplant the blocks —
	// simplest is to construct with uniform ranges via a uniform comm and
	// re-run on the skewed one. Instead, emulate: partition evenly by
	// constructing on a uniform 4-rank platform and measure the modeled
	// time with the slow node's flop cost applied to rank 0's share.
	naive := NewDenseGram(cluster.NewComm(cluster.NewPlatform(4, 1)), a)
	stNaive := applyWatched(t, naive, x, y)
	// rank 0 holds 1/4 of the flops but runs 4x slower on the skewed
	// platform: its phase time quadruples relative to the uniform run.
	naiveOnSkew := stNaive.ModeledTime + 3*float64(stNaive.MaxFlops)*slowNode.Cost.FlopTime

	if stBal.ModeledTime >= naiveOnSkew {
		t.Fatalf("balanced %.3gs not better than naive %.3gs", stBal.ModeledTime, naiveOnSkew)
	}
}

func TestHeterogeneousCriticalPathAccounting(t *testing.T) {
	// Two ranks, rank 1 four times faster, equal flop loads: the phase
	// cost must be bounded by the slow rank's time.
	plat := heteroPlatform(1, 4)
	comm := cluster.NewComm(plat)
	st := comm.Run(func(r *cluster.Rank) {
		r.AddFlops(1000)
		r.Barrier()
	})
	want := 1000 * plat.Cost.FlopTime / 1 // slow rank dominates
	if math.Abs(st.ModeledTime-want-plat.Latency()) > 1e-12 {
		t.Fatalf("modeled %v, want %v + latency", st.ModeledTime, want)
	}
}
