package dist

import (
	"extdict/internal/cluster"
	"extdict/internal/mat"
	"extdict/internal/rng"
)

// BatchGram is the stochastic operator behind the SGD baseline (§VIII-A):
// each Apply draws a fresh uniform batch of B rows of A and computes
//
//	y = (M/B) · A_bᵀ·A_b·x,
//
// an unbiased estimator of AᵀA·x. Columns of A are partitioned across ranks
// exactly as in DenseGram, so each rank extracts the batch rows of its own
// block locally; the only communication is the allreduce of the B-vector
// A_b·x — which is why SGD's per-iteration communication (B words) undercuts
// ExtDict's min(M, L), at the price of many more iterations and no memory
// savings (the full A stays resident).
type BatchGram struct {
	comm    *cluster.Comm
	a       *mat.Dense
	ranges  [][2]int    // per-rank column ranges (speed-weighted)
	scratch [][]float64 // per-rank B-vector; Apply runs allocation-free
	// B is the batch size (paper experiments: 64).
	B   int
	rng *rng.RNG
	n   int
}

// NewBatchGram builds the SGD operator over the full data matrix with the
// given batch size and a seeded batch schedule.
func NewBatchGram(comm *cluster.Comm, a *mat.Dense, batch int, seed uint64) *BatchGram {
	if batch < 1 || batch > a.Rows {
		batch = min(64, a.Rows)
	}
	g := &BatchGram{
		comm: comm, a: a, B: batch, rng: rng.New(seed), n: a.Cols,
		ranges:  rangesFor(comm, a.Cols),
		scratch: make([][]float64, comm.P()),
	}
	for i := range g.scratch {
		g.scratch[i] = make([]float64, batch)
	}
	return g
}

// Dim implements Operator.
func (g *BatchGram) Dim() int { return g.n }

// Name implements Operator.
func (g *BatchGram) Name() string { return "SGD" }

// Apply implements Operator. Each call consumes one batch from the seeded
// schedule, so repeated Apply calls walk the SGD iteration sequence.
func (g *BatchGram) Apply(x, y []float64) cluster.Stats {
	if len(x) != g.n || len(y) != g.n {
		panic("dist: BatchGram.Apply length mismatch")
	}
	// The batch is drawn once (rank 0's job in a real deployment; the seed
	// is shared so no communication is needed for it).
	batch := g.rng.Subset(g.a.Rows, g.B)
	scale := float64(g.a.Rows) / float64(g.B)
	return g.comm.Run(func(r *cluster.Rank) {
		lo, hi := g.ranges[r.ID][0], g.ranges[r.ID][1]
		ni := hi - lo

		// Resident set (Eq. 4): the rank's B-vector scratch. The full data
		// matrix joins below, at its first touch.
		r.AddResident(8 * int64(g.B))

		// v = A_b,i·x_i: one dot product per batch row over the local block,
		// through the unrolled kernel (2·B·n_i flops, the Dot contract).
		v := g.scratch[r.ID][:len(batch)]
		xi := x[lo:hi]
		for bi, row := range batch {
			rowSlice := g.a.Row(row)[lo:hi]
			v[bi] = mat.Dot(rowSlice, xi)
		}
		r.AddFlops(2 * int64(len(batch)) * int64(ni))
		// Each Dot streams both operands once: 16·n_i bytes per batch row.
		r.AddBytes(16 * int64(len(batch)) * int64(ni))
		// Batch extraction reads rows of the whole M×N matrix, so all of A
		// stays resident — SGD's "no memory savings" (§VIII-A): row access
		// defeats the column partitioning, and every rank keeps full A.
		r.AddResident(8 * int64(g.a.Rows) * int64(g.n))

		// Share the B-vector: SGD's entire communication.
		r.Allreduce(v)

		// y_i = scale · A_b,iᵀ·v, one unrolled axpy per batch row.
		yi := y[lo:hi]
		mat.Zero(yi)
		for bi, row := range batch {
			rowSlice := g.a.Row(row)[lo:hi]
			mat.Axpy(v[bi]*scale, rowSlice, yi)
		}
		// The claim follows Eq. 3's multiply-add count, 2·B·n_i: the B
		// scaling multiplies (v[bi]*scale) are O(B) bookkeeping outside the
		// paper's cost model, so the static upper bound is kept as the claim.
		//lint:ignore costmodel Eq. 3 counts the 2·B·n_i multiply-adds; the per-batch scale multiply is O(B) bookkeeping the paper's model excludes
		r.AddFlops(2 * int64(len(batch)) * int64(ni))
		// Zero writes the n_i output once; each Axpy then streams the row,
		// and reads + rewrites the output: 8·n_i + 24·B·n_i bytes.
		r.AddBytes(8*int64(ni) + 24*int64(len(batch))*int64(ni))
	})
}
