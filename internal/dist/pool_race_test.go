package dist

import (
	"testing"

	"extdict/internal/cluster"
	"extdict/internal/mat"
	"extdict/internal/rng"
)

// TestSharedPoolUnderConcurrentRanks drives DenseGram.Apply — whose per-rank
// bodies call the pool-backed ParMulVec/ParMulVecT concurrently from every
// simulated rank goroutine — on a large enough block that the parallel paths
// actually engage, and checks the shared pool never runs more workers than
// its global budget. Run under -race this also exercises the pool's
// submit/execute handoff for data races between ranks.
func TestSharedPoolUnderConcurrentRanks(t *testing.T) {
	oldWorkers := mat.Workers
	mat.Workers = 4
	defer func() { mat.Workers = oldWorkers }()

	a := testData(t, 300, 600, 31)
	x := randVec(rng.New(32), 600)
	want := a.MulVecT(a.MulVec(x, nil), nil)

	plat := cluster.PaperPlatforms()[0]
	comm := cluster.NewComm(plat)
	g := NewDenseGram(comm, a)

	mat.ResetPoolPeak()
	y := make([]float64, 600)
	for iter := 0; iter < 10; iter++ {
		applyWatched(t, g, x, y)
	}
	for i := range want {
		if diff := y[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("mismatch at %d: %v vs %v", i, y[i], want[i])
		}
	}
	if peak, budget := mat.PoolPeakWorkers(), mat.PoolBudget(); peak > budget {
		t.Fatalf("pool peak %d exceeds budget %d with %d concurrent ranks",
			peak, budget, plat.Topology.P())
	}
}
