package dist

import (
	"testing"

	"extdict/internal/cluster"
	"extdict/internal/rng"
)

// Analytic totals of the byte contracts in DESIGN.md ("Memory model"),
// summed over one full Apply. The per-rank column windows partition N and
// the per-rank CSC blocks partition nnz(C), so the totals depend only on
// the global shape, never on the partition.

// denseGramBytes: per rank two dense passes over the M×n_i block plus both
// vector ends, summed over the partition of N.
func denseGramBytes(m, n, p int64) int64 {
	return 16 * (m*n + m*p + n)
}

// exdCase1Bytes: two CSC passes per rank (payload + indices + pointers +
// vector ends) plus the dense dictionary round trip on rank 0 only.
func exdCase1Bytes(m, n, l, p, nnz int64) int64 {
	return 32*nnz + 32*n + 16*l*p + 16*p + 16*(m*l+m+l)
}

// exdCase2Bytes: same sparse traffic, but every rank runs the dense round
// trip on its own replica of D.
func exdCase2Bytes(m, n, l, p, nnz int64) int64 {
	return 32*nnz + 32*n + 16*l*p + 16*p + 16*p*(m*l+m+l)
}

// batchGramBytes: per rank the B per-row dots over the window, then the
// zero + B axpy scatter, summed over the partition of N.
func batchGramBytes(b, n int64) int64 {
	return 40*b*n + 8*n
}

// TestOperatorBytesMatchModel draws randomized shapes and checks that the
// runtime TotalBytes of a real Apply equals the analytic polynomial
// exactly for every operator — the runtime side of the contract memmodel
// proves statically.
func TestOperatorBytesMatchModel(t *testing.T) {
	r := rng.New(23)
	for trial := 0; trial < 5; trial++ {
		m := 12 + int(r.Uint64()%24)     // 12..35
		n := m + 20 + int(r.Uint64()%80) // keeps the fit overdetermined
		p := 1 + int(r.Uint64()%5)
		plat := cluster.NewPlatform(1, p)
		a := testData(t, m, n, uint64(100+trial))
		x := randVec(r, n)
		y := make([]float64, n)

		g := NewDenseGram(cluster.NewComm(plat), a)
		st := applyWatched(t, g, x, y)
		if want := denseGramBytes(int64(m), int64(n), int64(p)); st.TotalBytes != want {
			t.Fatalf("trial %d DenseGram m=%d n=%d p=%d: bytes %d, want %d",
				trial, m, n, p, st.TotalBytes, want)
		}

		for _, l := range []int{m - 4, m + 6} { // Case 1 (L≤M) and Case 2 (L>M)
			tr := fitExD(t, a, l, 0.05)
			eg, err := NewExDGram(cluster.NewComm(plat), tr.D, tr.C)
			if err != nil {
				t.Fatal(err)
			}
			nnz := int64(tr.C.NNZ())
			want := exdCase1Bytes(int64(m), int64(n), int64(l), int64(p), nnz)
			if eg.CaseTwo() {
				want = exdCase2Bytes(int64(m), int64(n), int64(l), int64(p), nnz)
			}
			st = applyWatched(t, eg, x, y)
			if st.TotalBytes != want {
				t.Fatalf("trial %d ExDGram m=%d n=%d l=%d p=%d nnz=%d: bytes %d, want %d",
					trial, m, n, l, p, nnz, st.TotalBytes, want)
			}
		}

		b := 1 + int(r.Uint64()%uint64(m))
		bg := NewBatchGram(cluster.NewComm(plat), a, b, uint64(trial+1))
		st = applyWatched(t, bg, x, y)
		if want := batchGramBytes(int64(bg.B), int64(n)); st.TotalBytes != want {
			t.Fatalf("trial %d BatchGram b=%d n=%d p=%d: bytes %d, want %d",
				trial, bg.B, n, p, st.TotalBytes, want)
		}
	}
}

// TestOperatorBytesMonotone checks the analytic polynomials are strictly
// monotone in every dimension: streaming more rows, columns, atoms, or
// stored coefficients can only move more bytes. Random base points and
// random positive bumps, one dimension at a time.
func TestOperatorBytesMonotone(t *testing.T) {
	r := rng.New(29)
	dim := func() int64 { return 1 + int64(r.Uint64()%1000) }
	bump := func(v int64) int64 { return v + 1 + int64(r.Uint64()%100) }
	for trial := 0; trial < 100; trial++ {
		m, n, l, p, nnz, b := dim(), dim(), dim(), dim(), dim(), dim()
		if got, base := denseGramBytes(bump(m), n, p), denseGramBytes(m, n, p); got <= base {
			t.Fatalf("denseGramBytes not monotone in m: %d -> %d", base, got)
		}
		if got, base := denseGramBytes(m, bump(n), p), denseGramBytes(m, n, p); got <= base {
			t.Fatalf("denseGramBytes not monotone in n: %d -> %d", base, got)
		}
		for name, f := range map[string]func(m, n, l, p, nnz int64) int64{
			"exdCase1Bytes": exdCase1Bytes,
			"exdCase2Bytes": exdCase2Bytes,
		} {
			base := f(m, n, l, p, nnz)
			for arg, got := range map[string]int64{
				"m":   f(bump(m), n, l, p, nnz),
				"n":   f(m, bump(n), l, p, nnz),
				"l":   f(m, n, bump(l), p, nnz),
				"nnz": f(m, n, l, p, bump(nnz)),
			} {
				if got <= base {
					t.Fatalf("%s not monotone in %s: %d -> %d", name, arg, base, got)
				}
			}
		}
		if got, base := batchGramBytes(bump(b), n), batchGramBytes(b, n); got <= base {
			t.Fatalf("batchGramBytes not monotone in b: %d -> %d", base, got)
		}
		if got, base := batchGramBytes(b, bump(n)), batchGramBytes(b, n); got <= base {
			t.Fatalf("batchGramBytes not monotone in n: %d -> %d", base, got)
		}
	}
}
