package dist

import (
	"math"
	"testing"

	"extdict/internal/cluster"
	"extdict/internal/exd"
	"extdict/internal/faust"
	"extdict/internal/mat"
	"extdict/internal/rng"
	"extdict/internal/sparse"
)

// factorizeD turns a fitted transform's dictionary into a factor chain at a
// generous budget so the operator tests measure the schedule, not the
// factorization error.
func factorizeD(t testing.TB, tr *exd.Transform, k, budget int) *faust.FastDict {
	t.Helper()
	fd, err := faust.Factorize(tr.D, faust.Options{Factors: k, Budget: budget, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return fd
}

func TestFastGramMatchesSerialBothCases(t *testing.T) {
	a := testData(t, 30, 120, 3)
	r := rng.New(4)
	x := randVec(r, 120)

	for _, l := range []int{20, 80} { // Case 1 (L≤M) and Case 2 (L>M)
		tr := fitExD(t, a, l, 0.05)
		fd := factorizeD(t, tr, 3, 30*l)
		// The serial reference applies the materialized chain, so the test
		// isolates the distributed schedule from the factorization error.
		dc := mat.Mul(fd.Dense(), tr.C.Dense())
		want := dc.MulVecT(dc.MulVec(x, nil), nil)

		for _, plat := range []cluster.Platform{cluster.NewPlatform(1, 1), cluster.NewPlatform(2, 4)} {
			comm := cluster.NewComm(plat)
			g, err := NewFastGram(comm, fd, tr.C)
			if err != nil {
				t.Fatal(err)
			}
			if g.CaseTwo() != (l > 30) {
				t.Fatalf("L=%d M=30: CaseTwo=%v", l, g.CaseTwo())
			}
			if g.Dim() != 120 || g.Name() != "FastD" {
				t.Fatal("metadata wrong")
			}
			y := make([]float64, 120)
			applyWatched(t, g, x, y)
			for i := range want {
				if math.Abs(y[i]-want[i]) > 1e-8 {
					t.Fatalf("L=%d %s: mismatch at %d: %v vs %v",
						l, plat.Topology, i, y[i], want[i])
				}
			}
		}
	}
}

func TestFastGramCommunicationOptimal(t *testing.T) {
	// The chain changes the arithmetic, not the schedule: critical-path
	// words per iteration stay at ExDGram's optimal 2·min(M, L).
	a := testData(t, 30, 120, 5)
	x := randVec(rng.New(6), 120)
	y := make([]float64, 120)
	plat := cluster.NewPlatform(2, 4)

	small := fitExD(t, a, 16, 0.05) // L=16 < M=30
	g1, err := NewFastGram(cluster.NewComm(plat), factorizeD(t, small, 3, 200), small.C)
	if err != nil {
		t.Fatal(err)
	}
	st1 := applyWatched(t, g1, x, y)
	if st1.PathWords != 2*16 {
		t.Fatalf("Case 1 path words %d, want %d", st1.PathWords, 2*16)
	}

	big := fitExD(t, a, 100, 0.05) // L=100 > M=30
	g2, err := NewFastGram(cluster.NewComm(plat), factorizeD(t, big, 3, 900), big.C)
	if err != nil {
		t.Fatal(err)
	}
	st2 := applyWatched(t, g2, x, y)
	if st2.PathWords != 2*30 {
		t.Fatalf("Case 2 path words %d, want %d", st2.PathWords, 2*30)
	}
}

func TestFastGramFlopAccounting(t *testing.T) {
	a := testData(t, 30, 80, 10)
	tr := fitExD(t, a, 20, 0.05)
	fd := factorizeD(t, tr, 4, 120)
	plat := cluster.NewPlatform(1, 4)
	g, err := NewFastGram(cluster.NewComm(plat), fd, tr.C)
	if err != nil {
		t.Fatal(err)
	}
	x := randVec(rng.New(11), 80)
	y := make([]float64, 80)
	st := applyWatched(t, g, x, y)
	// Case 1 totals: 4·nnz(C) for the sparse products + 4·Σ nnz(S_i) on
	// rank 0 — the chain replaces ExDGram's 4·M·L term, which is the whole
	// point of the operator.
	want := 4*int64(tr.C.NNZ()) + 4*fd.NNZ()
	if st.TotalFlops != want {
		t.Fatalf("flops %d, want %d", st.TotalFlops, want)
	}
	if dense := 4*int64(tr.C.NNZ()) + int64(4*30*20); want >= dense {
		t.Fatalf("chain flops %d not below dense-dictionary flops %d", want, dense)
	}
}

func TestFastGramResidentAccounting(t *testing.T) {
	a := testData(t, 30, 80, 12)
	tr := fitExD(t, a, 20, 0.05)
	fd := factorizeD(t, tr, 3, 120)
	const p = 4
	plat := cluster.NewPlatform(1, p)
	g, err := NewFastGram(cluster.NewComm(plat), fd, tr.C)
	if err != nil {
		t.Fatal(err)
	}
	x := randVec(rng.New(13), 80)
	y := make([]float64, 80)
	st := applyWatched(t, g, x, y)
	if len(st.PeakResidentPerRank) != p {
		t.Fatalf("runtime reported %d resident ranks, want %d", len(st.PeakResidentPerRank), p)
	}
	ranges := WeightedBlockRanges(80, plat.RankSpeeds())
	for i := 0; i < p; i++ {
		blk := tr.C.ColSliceRange(ranges[i][0], ranges[i][1])
		want := 16*int64(blk.NNZ()) + 8*int64(ranges[i][1]-ranges[i][0]+1) +
			16*20 + 8*30 + 16*int64(fd.MaxInterDim())
		if i == 0 {
			// Case 1: the chain payload is resident on rank 0 only.
			want += 8 * fd.ResidentWords()
		}
		if st.PeakResidentPerRank[i] != want {
			t.Fatalf("rank %d resident %d bytes, want %d", i, st.PeakResidentPerRank[i], want)
		}
	}
}

func TestFastGramRejectsBadInputs(t *testing.T) {
	a := testData(t, 20, 60, 7)
	tr := fitExD(t, a, 15, 0.1)
	comm := cluster.NewComm(cluster.NewPlatform(1, 2))

	wrong := factorizeD(t, tr, 2, 100)
	wrong.Cols = 14 // breaks both Check and the C-rows agreement
	if _, err := NewFastGram(comm, wrong, tr.C); err == nil {
		t.Fatal("malformed chain accepted")
	}

	ok := factorizeD(t, tr, 2, 100)
	narrow := &sparse.CSC{Rows: 14, Cols: 10, ColPtr: make([]int, 11)}
	if _, err := NewFastGram(comm, ok, narrow); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestFastGramDeterministicAcrossWorkers(t *testing.T) {
	// The parallel chain kernels are bit-identical to serial, so the whole
	// distributed product must not depend on the pool width.
	a := testData(t, 24, 70, 16)
	tr := fitExD(t, a, 40, 0.05)
	fd := factorizeD(t, tr, 3, 400)
	x := randVec(rng.New(17), 70)
	plat := cluster.NewPlatform(2, 2)

	saved := mat.Workers
	defer func() { mat.Workers = saved }()

	var ref []float64
	for _, w := range []int{1, 2, 7} {
		mat.Workers = w
		g, err := NewFastGram(cluster.NewComm(plat), fd, tr.C)
		if err != nil {
			t.Fatal(err)
		}
		y := make([]float64, 70)
		applyWatched(t, g, x, y)
		if ref == nil {
			ref = append([]float64(nil), y...)
			continue
		}
		for i := range y {
			if math.Float64bits(y[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("workers=%d: y[%d] differs from serial bit pattern", w, i)
			}
		}
	}
}

func BenchmarkFastGramApply(b *testing.B) {
	a := testData(b, 96, 1024, 1)
	tr := fitExD(b, a, 256, 0.1)
	fd := factorizeD(b, tr, 4, 96*256/16)
	g, err := NewFastGram(cluster.NewComm(cluster.NewPlatform(2, 4)), fd, tr.C)
	if err != nil {
		b.Fatal(err)
	}
	x := randVec(rng.New(2), 1024)
	y := make([]float64, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Apply(x, y)
	}
}
