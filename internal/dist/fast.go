package dist

import (
	"fmt"

	"extdict/internal/cluster"
	"extdict/internal/faust"
	"extdict/internal/sparse"
)

// FastGram executes Algorithm 2 with the dictionary replaced by a FAµST
// sparse-factor chain D ≈ S_1·S_2·…·S_k: y = Cᵀ·Dᵀ·D·C·x where both
// dictionary applications run through the chain at Σ 2·nnz(S_i) flops
// instead of 2·M·L. The schedule is ExDGram's, case for case:
//
//   - Case 1 (L ≤ M): the chain is stored only on rank 0. Ranks reduce the
//     L-vector v¹ = Σ C_i·x_i to rank 0, which pushes it down and back up
//     the factor chain alone and broadcasts the L-vector result.
//
//   - Case 2 (L > M): the chain is replicated — cheap, because its resident
//     footprint is the factor payload Σ (2·nnz_i + cols_i + 1) words rather
//     than M·L. Ranks compute v² = D·(C_i·x_i) through the chain locally,
//     allreduce the M-vector, and redundantly apply the transposed chain.
//
// Communication is identical to ExDGram — 2·min(M, L) words per iteration —
// so every saving is arithmetic and resident memory.
type FastGram struct {
	comm    *cluster.Comm
	fd      *faust.FastDict
	blocks  []*sparse.CSC // per-rank column blocks of C
	ranges  [][2]int      // per-rank column ranges (speed-weighted)
	nnz     []int64       // per-rank nnz
	scratch []fastScratch // per-rank buffers; Apply runs allocation-free
	n       int
	l, m    int

	// Whole-chain invariants recorded once so every accounting claim is a
	// constructor-resolved symbol: Σ nnz(S_i), the per-apply vector words
	// Σ (rows_i + 2·cols_i + 1), the resident words Σ (2·nnz_i + cols_i + 1),
	// and the widest intermediate the hop buffers must hold.
	chainNNZ   int64
	chainVecs  int64
	chainWords int64
	inter      int
}

// fastScratch holds one rank's reusable vectors: the two L-vectors and one
// M-vector of the ExD schedule plus the two ping-pong hop buffers the chain
// kernels thread their intermediates through.
type fastScratch struct {
	vl1, vl2 []float64
	vm       []float64
	c1, c2   []float64
}

// NewFastGram partitions C by columns and places the factor chain according
// to the case, exactly as NewExDGram places the dense dictionary.
func NewFastGram(comm *cluster.Comm, fd *faust.FastDict, c *sparse.CSC) (*FastGram, error) {
	if err := fd.Check(); err != nil {
		return nil, fmt.Errorf("dist: bad factor chain: %w", err)
	}
	if fd.Cols != c.Rows {
		return nil, fmt.Errorf("dist: chain is %dx%d but C has %d rows", fd.Rows, fd.Cols, c.Rows)
	}
	p := comm.P()
	g := &FastGram{
		comm: comm, fd: fd, n: c.Cols, l: fd.Cols, m: fd.Rows,
		blocks:  make([]*sparse.CSC, p),
		ranges:  rangesFor(comm, c.Cols),
		nnz:     make([]int64, p),
		scratch: make([]fastScratch, p),
	}
	g.chainNNZ = g.fd.NNZ()
	g.chainVecs = g.fd.VecWords()
	g.chainWords = g.fd.ResidentWords()
	g.inter = g.fd.MaxInterDim()
	for i := 0; i < p; i++ {
		g.blocks[i] = c.ColSliceRange(g.ranges[i][0], g.ranges[i][1])
		g.nnz[i] = int64(g.blocks[i].NNZ())
		g.scratch[i] = fastScratch{
			vl1: make([]float64, g.l),
			vl2: make([]float64, g.l),
			vm:  make([]float64, g.m),
			c1:  make([]float64, g.inter),
			c2:  make([]float64, g.inter),
		}
	}
	return g, nil
}

// Dim implements Operator.
func (g *FastGram) Dim() int { return g.n }

// Name implements Operator.
func (g *FastGram) Name() string { return "FastD" }

// CaseTwo reports whether the replicated-chain schedule is in use.
func (g *FastGram) CaseTwo() bool { return g.l > g.m }

// Apply implements Operator.
func (g *FastGram) Apply(x, y []float64) cluster.Stats {
	if len(x) != g.n || len(y) != g.n {
		panic("dist: FastGram.Apply length mismatch")
	}
	if g.CaseTwo() {
		return g.comm.Run(func(r *cluster.Rank) { g.applyCase2(r, x, y) })
	}
	return g.comm.Run(func(r *cluster.Rank) { g.applyCase1(r, x, y) })
}

// applyCase1 is Algorithm 2, Case 1 (L ≤ M): the chain lives on rank 0 only.
func (g *FastGram) applyCase1(r *cluster.Rank, x, y []float64) {
	lo, hi := g.ranges[r.ID][0], g.ranges[r.ID][1]
	blk := g.blocks[r.ID]

	// Resident set (Eq. 4, Case 1): the rank's CSC block — value and
	// row-index payload 16·nnz_i plus the column-pointer array — and its
	// constructor scratch (two L-vectors, one M-vector, two hop buffers).
	// The chain itself joins only rank 0's resident set below.
	r.AddResident(16*g.nnz[r.ID] + 8*(int64(hi-lo)+1) + 16*int64(g.l) + 8*int64(g.m) + 16*int64(g.inter))

	// Step 1: v¹_i = C_i·x_i (sparse: 2·nnz_i flops; traffic is the CSC
	// payload 16·nnz_i plus the dense vectors and column-pointer array).
	v1 := blk.MulVec(x[lo:hi], g.scratch[r.ID].vl1)
	r.AddFlops(2 * g.nnz[r.ID])
	r.AddBytes(16*g.nnz[r.ID] + 8*(2*int64(hi-lo)+int64(g.l)+1))

	// Steps 3-4: reduce v¹ to rank 0 (L words on the path).
	r.Reduce(v1, 0)

	v3 := v1
	if r.ID == 0 {
		// Steps 4-5 on rank 0 only: v² = D·v¹ then v³ = Dᵀ·v², both through
		// the factor chain — Σ 2·nnz(S_i) flops per direction instead of
		// 2·M·L, and the resident footprint is the chain payload rather
		// than the M×L dictionary.
		v2 := g.fd.ParMulVec(v1, g.scratch[r.ID].vm, g.scratch[r.ID].c1, g.scratch[r.ID].c2)
		g.fd.ParMulVecT(v2, v3, g.scratch[r.ID].c1, g.scratch[r.ID].c2)
		r.AddFlops(2 * 2 * g.chainNNZ)
		r.AddBytes(2 * (16*g.chainNNZ + 8*g.chainVecs))
		r.AddResident(8 * g.chainWords)
	}

	// Step 6: broadcast v³ (L words).
	r.Broadcast(v3, 0)

	// Step 7: y_i = C_iᵀ·v³.
	blk.MulVecT(v3, y[lo:hi])
	r.AddFlops(2 * g.nnz[r.ID])
	r.AddBytes(16*g.nnz[r.ID] + 8*(int64(g.l)+2*int64(hi-lo)+1))
}

// applyCase2 is Algorithm 2, Case 2 (L > M): the chain replicated everywhere.
func (g *FastGram) applyCase2(r *cluster.Rank, x, y []float64) {
	lo, hi := g.ranges[r.ID][0], g.ranges[r.ID][1]
	blk := g.blocks[r.ID]

	// Resident set (Eq. 4, Case 2): the rank's CSC block payload and column
	// pointers plus its constructor scratch, as in Case 1.
	r.AddResident(16*g.nnz[r.ID] + 8*(int64(hi-lo)+1) + 16*int64(g.l) + 8*int64(g.m) + 16*int64(g.inter))

	// Step 1: v¹_i = C_i·x_i.
	v1 := blk.MulVec(x[lo:hi], g.scratch[r.ID].vl1)
	r.AddFlops(2 * g.nnz[r.ID])
	r.AddBytes(16*g.nnz[r.ID] + 8*(2*int64(hi-lo)+int64(g.l)+1))

	// Step 3: v²_i = D·v¹_i through the local chain replica. The replica
	// joins every rank's resident set — but at the factor payload
	// 8·Σ (2·nnz_i + cols_i + 1) bytes, not 8·M·L; that cheapness is the
	// point of replicating a FAµST chain.
	v2 := g.fd.ParMulVec(v1, g.scratch[r.ID].vm, g.scratch[r.ID].c1, g.scratch[r.ID].c2)
	r.AddFlops(2 * g.chainNNZ)
	r.AddBytes(16*g.chainNNZ + 8*g.chainVecs)
	r.AddResident(8 * g.chainWords)

	// Steps 4-6: v = Σ v²_i, everywhere (M words each way).
	r.Allreduce(v2)

	// Step 7: y_i = C_iᵀ·(Dᵀ·v) — the transposed-chain multiply is redundant
	// on every rank, as in ExDGram Case 2, but costs Σ 2·nnz(S_i) here.
	w := g.fd.ParMulVecT(v2, g.scratch[r.ID].vl2, g.scratch[r.ID].c1, g.scratch[r.ID].c2)
	r.AddFlops(2 * g.chainNNZ)
	r.AddBytes(16*g.chainNNZ + 8*g.chainVecs)
	blk.MulVecT(w, y[lo:hi])
	r.AddFlops(2 * g.nnz[r.ID])
	r.AddBytes(16*g.nnz[r.ID] + 8*(int64(g.l)+2*int64(hi-lo)+1))
}
