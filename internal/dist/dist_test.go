package dist

import (
	"math"
	"testing"

	"extdict/internal/cluster"
	"extdict/internal/cluster/clustertest"
	"extdict/internal/dataset"
	"extdict/internal/exd"
	"extdict/internal/mat"
	"extdict/internal/rng"
)

// applyWatched runs op.Apply under the shared cluster watchdog so a
// collective deadlock in an operator fails the test with a goroutine dump
// instead of hanging CI.
func applyWatched(t testing.TB, op Operator, x, y []float64) cluster.Stats {
	t.Helper()
	var st cluster.Stats
	clustertest.Watchdog(t, func() { st = op.Apply(x, y) })
	return st
}

func testData(t testing.TB, m, n int, seed uint64) *mat.Dense {
	t.Helper()
	u, err := dataset.GenerateUnion(dataset.UnionParams{M: m, N: n, Ks: []int{3, 4}}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return u.A
}

func randVec(r *rng.RNG, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

func TestBlockRangeCoversAll(t *testing.T) {
	for _, n := range []int{1, 7, 64, 100} {
		for _, p := range []int{1, 3, 8, 64} {
			prev := 0
			for i := 0; i < p; i++ {
				lo, hi := BlockRange(n, p, i)
				if lo != prev || hi < lo {
					t.Fatalf("n=%d p=%d i=%d: [%d,%d) after %d", n, p, i, lo, hi, prev)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d p=%d: blocks end at %d", n, p, prev)
			}
		}
	}
}

func TestDenseGramMatchesSerial(t *testing.T) {
	a := testData(t, 24, 90, 1)
	r := rng.New(2)
	x := randVec(r, 90)
	want := a.MulVecT(a.MulVec(x, nil), nil) // AᵀA·x serially

	for _, plat := range cluster.PaperPlatforms() {
		comm := cluster.NewComm(plat)
		g := NewDenseGram(comm, a)
		y := make([]float64, 90)
		st := applyWatched(t, g, x, y)
		for i := range want {
			if math.Abs(y[i]-want[i]) > 1e-9 {
				t.Fatalf("platform %s: mismatch at %d: %v vs %v",
					plat.Topology, i, y[i], want[i])
			}
		}
		if plat.Topology.P() > 1 && st.PathWords != int64(2*a.Rows) {
			t.Fatalf("platform %s: path words %d, want %d",
				plat.Topology, st.PathWords, 2*a.Rows)
		}
	}
}

func fitExD(t testing.TB, a *mat.Dense, l int, eps float64) *exd.Transform {
	t.Helper()
	tr, err := exd.Fit(a, exd.Params{L: l, Epsilon: eps, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestExDGramMatchesSerialBothCases(t *testing.T) {
	a := testData(t, 30, 120, 3)
	r := rng.New(4)
	x := randVec(r, 120)

	for _, l := range []int{20, 80} { // Case 1 (L≤M) and Case 2 (L>M)
		tr := fitExD(t, a, l, 0.05)
		cd := tr.C.Dense()
		dc := mat.Mul(tr.D, cd)
		want := dc.MulVecT(dc.MulVec(x, nil), nil) // (DC)ᵀDC·x serially

		for _, plat := range []cluster.Platform{cluster.NewPlatform(1, 1), cluster.NewPlatform(2, 4)} {
			comm := cluster.NewComm(plat)
			g, err := NewExDGram(comm, tr.D, tr.C)
			if err != nil {
				t.Fatal(err)
			}
			if g.CaseTwo() != (l > 30) {
				t.Fatalf("L=%d M=30: CaseTwo=%v", l, g.CaseTwo())
			}
			y := make([]float64, 120)
			applyWatched(t, g, x, y)
			for i := range want {
				if math.Abs(y[i]-want[i]) > 1e-8 {
					t.Fatalf("L=%d %s: mismatch at %d: %v vs %v",
						l, plat.Topology, i, y[i], want[i])
				}
			}
		}
	}
}

func TestExDGramCommunicationOptimal(t *testing.T) {
	// §VI-B: critical-path words per iteration must be 2·min(M, L).
	a := testData(t, 30, 120, 5)
	x := randVec(rng.New(6), 120)
	y := make([]float64, 120)
	plat := cluster.NewPlatform(2, 4)

	small := fitExD(t, a, 16, 0.05) // L=16 < M=30
	g1, _ := NewExDGram(cluster.NewComm(plat), small.D, small.C)
	st1 := applyWatched(t, g1, x, y)
	if st1.PathWords != 2*16 {
		t.Fatalf("Case 1 path words %d, want %d", st1.PathWords, 2*16)
	}

	big := fitExD(t, a, 100, 0.05) // L=100 > M=30
	g2, _ := NewExDGram(cluster.NewComm(plat), big.D, big.C)
	st2 := applyWatched(t, g2, x, y)
	if st2.PathWords != 2*30 {
		t.Fatalf("Case 2 path words %d, want %d", st2.PathWords, 2*30)
	}
}

func TestExDGramRejectsShapeMismatch(t *testing.T) {
	a := testData(t, 20, 60, 7)
	tr := fitExD(t, a, 15, 0.1)
	d := mat.NewDense(20, 14) // wrong column count vs C rows
	if _, err := NewExDGram(cluster.NewComm(cluster.NewPlatform(1, 2)), d, tr.C); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestExDGramApproximatesDenseGram(t *testing.T) {
	// (DC)ᵀDC·x ≈ AᵀA·x within the transformation error budget.
	a := testData(t, 32, 150, 8)
	x := randVec(rng.New(9), 150)
	plat := cluster.NewPlatform(1, 4)

	dense := NewDenseGram(cluster.NewComm(plat), a)
	yTrue := make([]float64, 150)
	applyWatched(t, dense, x, yTrue)

	tr := fitExD(t, a, 90, 0.01)
	g, _ := NewExDGram(cluster.NewComm(plat), tr.D, tr.C)
	yApprox := make([]float64, 150)
	applyWatched(t, g, x, yApprox)

	diff := make([]float64, 150)
	mat.SubVec(diff, yTrue, yApprox)
	rel := mat.Norm2(diff) / mat.Norm2(yTrue)
	if rel > 0.1 {
		t.Fatalf("relative operator error %v too large for eps=0.01", rel)
	}
}

func TestExDGramFlopAccounting(t *testing.T) {
	a := testData(t, 30, 80, 10)
	tr := fitExD(t, a, 20, 0.05)
	plat := cluster.NewPlatform(1, 4)
	g, _ := NewExDGram(cluster.NewComm(plat), tr.D, tr.C)
	x := randVec(rng.New(11), 80)
	y := make([]float64, 80)
	st := applyWatched(t, g, x, y)
	// Case 1 totals: 4·nnz(C) for the sparse products + 4·M·L on rank 0.
	want := int64(4*tr.C.NNZ() + 4*30*20)
	if st.TotalFlops != want {
		t.Fatalf("flops %d, want %d", st.TotalFlops, want)
	}
}

func TestBatchGramUnbiasedAndCheap(t *testing.T) {
	a := testData(t, 40, 100, 12)
	x := randVec(rng.New(13), 100)
	want := a.MulVecT(a.MulVec(x, nil), nil)

	plat := cluster.NewPlatform(1, 4)
	g := NewBatchGram(cluster.NewComm(plat), a, 8, 99)
	if g.Dim() != 100 || g.Name() != "SGD" {
		t.Fatal("metadata wrong")
	}

	// Average many stochastic applications: must approach AᵀA·x.
	const trials = 400
	avg := make([]float64, 100)
	y := make([]float64, 100)
	var st cluster.Stats
	for i := 0; i < trials; i++ {
		s := applyWatched(t, g, x, y)
		if i == 0 {
			st = s
		}
		mat.Axpy(1.0/trials, y, avg)
	}
	diff := make([]float64, 100)
	mat.SubVec(diff, avg, want)
	rel := mat.Norm2(diff) / mat.Norm2(want)
	if rel > 0.15 {
		t.Fatalf("stochastic mean off by %v", rel)
	}
	// Communication per iteration is 2·B words (reduce + broadcast).
	if st.PathWords != 2*8 {
		t.Fatalf("SGD path words %d, want %d", st.PathWords, 16)
	}
}

func TestBatchGramDefaultBatch(t *testing.T) {
	a := testData(t, 100, 50, 14)
	g := NewBatchGram(cluster.NewComm(cluster.NewPlatform(1, 1)), a, 0, 1)
	if g.B != 64 {
		t.Fatalf("default batch %d, want 64", g.B)
	}
	small := NewBatchGram(cluster.NewComm(cluster.NewPlatform(1, 1)), testData(t, 10, 20, 15), 0, 1)
	if small.B != 10 {
		t.Fatalf("clamped batch %d, want 10", small.B)
	}
}

func TestOperatorsDeterministic(t *testing.T) {
	a := testData(t, 24, 70, 16)
	tr := fitExD(t, a, 40, 0.05)
	x := randVec(rng.New(17), 70)
	plat := cluster.NewPlatform(2, 2)

	y1 := make([]float64, 70)
	y2 := make([]float64, 70)
	g1, _ := NewExDGram(cluster.NewComm(plat), tr.D, tr.C)
	g2, _ := NewExDGram(cluster.NewComm(plat), tr.D, tr.C)
	applyWatched(t, g1, x, y1)
	applyWatched(t, g2, x, y2)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatal("ExDGram not deterministic")
		}
	}
}

func BenchmarkExDGramApply(b *testing.B) {
	u, err := dataset.GenerateUnion(dataset.UnionParams{M: 96, N: 1024, Ks: []int{4, 5, 6}}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := exd.Fit(u.A, exd.Params{L: 256, Epsilon: 0.1, Seed: 1, Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	g, err := NewExDGram(cluster.NewComm(cluster.NewPlatform(2, 4)), tr.D, tr.C)
	if err != nil {
		b.Fatal(err)
	}
	x := randVec(rng.New(2), 1024)
	y := make([]float64, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Apply(x, y)
	}
}
