package dist

import (
	"testing"

	"extdict/internal/cluster"
	"extdict/internal/rng"
)

// Analytic per-rank resident sets of the allocation contracts in DESIGN.md
// ("Capacity model"). Unlike byte traffic these are high-water marks per
// rank, so the closed forms take the rank's own window and nnz share — the
// partition matters, and rank 0 carries the Case 1 dictionary.

// denseGramResident: the rank's owned M×w column window plus its M-length
// partial product buffer.
func denseGramResident(m, w int64) int64 {
	return 8 * (m*w + m)
}

// exdGramResident: the rank's CSC slice (values + row indices + column
// pointers), its two L-length workspace vectors and the M-length partial
// product, plus the M×L dictionary — on rank 0 only in Case 1, on every
// rank in Case 2.
func exdGramResident(m, w, l, nnz int64, caseTwo bool, rank int) int64 {
	r := 16*nnz + 8*(w+1) + 16*l + 8*m
	if caseTwo || rank == 0 {
		r += 8 * m * l
	}
	return r
}

// batchGramResident: every rank holds its own full M×N data matrix plus the
// batch-length partial product buffer.
func batchGramResident(m, n, b int64) int64 {
	return 8 * (m*n + b)
}

// TestOperatorResidentMatchesModel draws randomized shapes and checks that
// the runtime PeakResidentPerRank of a real Apply equals the analytic
// per-rank polynomial exactly for every operator and every rank — the
// runtime side of the contract allocmodel proves statically and the
// capacity report evaluates.
func TestOperatorResidentMatchesModel(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 5; trial++ {
		m := 12 + int(r.Uint64()%24)     // 12..35
		n := m + 20 + int(r.Uint64()%80) // keeps the fit overdetermined
		p := 1 + int(r.Uint64()%5)
		plat := cluster.NewPlatform(1, p)
		ranges := WeightedBlockRanges(n, plat.RankSpeeds())
		a := testData(t, m, n, uint64(300+trial))
		x := randVec(r, n)
		y := make([]float64, n)

		g := NewDenseGram(cluster.NewComm(plat), a)
		st := applyWatched(t, g, x, y)
		for i := 0; i < p; i++ {
			w := int64(ranges[i][1] - ranges[i][0])
			if want := denseGramResident(int64(m), w); st.PeakResidentPerRank[i] != want {
				t.Fatalf("trial %d DenseGram m=%d n=%d p=%d rank %d: resident %d, want %d",
					trial, m, n, p, i, st.PeakResidentPerRank[i], want)
			}
		}

		for _, l := range []int{m - 4, m + 6} { // Case 1 (L≤M) and Case 2 (L>M)
			tr := fitExD(t, a, l, 0.05)
			eg, err := NewExDGram(cluster.NewComm(plat), tr.D, tr.C)
			if err != nil {
				t.Fatal(err)
			}
			st = applyWatched(t, eg, x, y)
			for i := 0; i < p; i++ {
				lo, hi := ranges[i][0], ranges[i][1]
				nnz := int64(tr.C.ColSliceRange(lo, hi).NNZ())
				want := exdGramResident(int64(m), int64(hi-lo), int64(l), nnz, eg.CaseTwo(), i)
				if st.PeakResidentPerRank[i] != want {
					t.Fatalf("trial %d ExDGram m=%d n=%d l=%d p=%d rank %d: resident %d, want %d",
						trial, m, n, l, p, i, st.PeakResidentPerRank[i], want)
				}
			}
		}

		b := 1 + int(r.Uint64()%uint64(m))
		bg := NewBatchGram(cluster.NewComm(plat), a, b, uint64(trial+7))
		st = applyWatched(t, bg, x, y)
		for i := 0; i < p; i++ {
			if want := batchGramResident(int64(m), int64(n), int64(bg.B)); st.PeakResidentPerRank[i] != want {
				t.Fatalf("trial %d BatchGram b=%d n=%d p=%d rank %d: resident %d, want %d",
					trial, bg.B, n, p, i, st.PeakResidentPerRank[i], want)
			}
		}
	}
}

// TestOperatorResidentMonotone checks the analytic resident polynomials are
// strictly monotone in every data dimension: holding more rows, a wider
// window, more atoms, or more stored coefficients can only need more RAM.
// Random base points and random positive bumps, one dimension at a time.
func TestOperatorResidentMonotone(t *testing.T) {
	r := rng.New(43)
	dim := func() int64 { return 1 + int64(r.Uint64()%1000) }
	bump := func(v int64) int64 { return v + 1 + int64(r.Uint64()%100) }
	for trial := 0; trial < 100; trial++ {
		m, w, n, l, nnz, b := dim(), dim(), dim(), dim(), dim(), dim()
		if got, base := denseGramResident(bump(m), w), denseGramResident(m, w); got <= base {
			t.Fatalf("denseGramResident not monotone in m: %d -> %d", base, got)
		}
		if got, base := denseGramResident(m, bump(w)), denseGramResident(m, w); got <= base {
			t.Fatalf("denseGramResident not monotone in w: %d -> %d", base, got)
		}
		for _, caseTwo := range []bool{false, true} {
			base := exdGramResident(m, w, l, nnz, caseTwo, 0)
			for arg, got := range map[string]int64{
				"m":   exdGramResident(bump(m), w, l, nnz, caseTwo, 0),
				"w":   exdGramResident(m, bump(w), l, nnz, caseTwo, 0),
				"l":   exdGramResident(m, w, bump(l), nnz, caseTwo, 0),
				"nnz": exdGramResident(m, w, l, bump(nnz), caseTwo, 0),
			} {
				if got <= base {
					t.Fatalf("exdGramResident(caseTwo=%v) not monotone in %s: %d -> %d", caseTwo, arg, base, got)
				}
			}
		}
		if got, base := batchGramResident(bump(m), n, b), batchGramResident(m, n, b); got <= base {
			t.Fatalf("batchGramResident not monotone in m: %d -> %d", base, got)
		}
		if got, base := batchGramResident(m, bump(n), b), batchGramResident(m, n, b); got <= base {
			t.Fatalf("batchGramResident not monotone in n: %d -> %d", base, got)
		}
		if got, base := batchGramResident(m, n, bump(b)), batchGramResident(m, n, b); got <= base {
			t.Fatalf("batchGramResident not monotone in b: %d -> %d", base, got)
		}
	}
}
