package dist

// Ablation: Algorithm 2's two schedules around the L ≈ M boundary. Case 1
// centralizes the dictionary work on rank 0 and ships 2·L words; Case 2
// replicates the dictionary, pays redundant flops, and ships 2·M words. The
// paper switches at L = M; these benchmarks measure both sides of the
// boundary so the crossover is visible in the modeled time.

import (
	"fmt"
	"testing"

	"extdict/internal/cluster"
	"extdict/internal/dataset"
	"extdict/internal/exd"
	"extdict/internal/rng"
)

func BenchmarkAblationCaseBoundary(b *testing.B) {
	u, err := dataset.GenerateUnion(
		dataset.UnionParams{M: 128, N: 4096, Ks: []int{4, 5, 6}}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	plat := cluster.NewPlatform(2, 8)
	x := make([]float64, 4096)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, 4096)

	for _, l := range []int{64, 120, 136, 256} { // below, at, just above, far above M
		tr, err := exd.Fit(u.A, exd.Params{L: l, Epsilon: 0.05, Seed: 2, Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		g, err := NewExDGram(cluster.NewComm(plat), tr.D, tr.C)
		if err != nil {
			b.Fatal(err)
		}
		name := fmt.Sprintf("L=%d/case=%d", l, map[bool]int{false: 1, true: 2}[g.CaseTwo()])
		b.Run(name, func(b *testing.B) {
			var modeled float64
			var words int64
			for i := 0; i < b.N; i++ {
				st := g.Apply(x, y)
				modeled = st.ModeledTime
				words = st.PathWords
			}
			b.ReportMetric(modeled*1e6, "modeled-µs")
			b.ReportMetric(float64(words), "path-words")
		})
	}
}

// BenchmarkAblationHeterogeneous quantifies load balancing on a skewed
// cluster: one node runs 4× slower than the other three. The speed-weighted
// partition keeps every rank's phase time equal; the even split leaves the
// slow node on the critical path.
func BenchmarkAblationHeterogeneous(b *testing.B) {
	u, err := dataset.GenerateUnion(
		dataset.UnionParams{M: 64, N: 8192, Ks: []int{3, 4}}, rng.New(9))
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 8192)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, 8192)

	skew := cluster.NewPlatform(4, 1)
	skew.Cost.NodeSpeed = []float64{0.25, 1, 1, 1}

	b.Run("balanced", func(b *testing.B) {
		g := NewDenseGram(cluster.NewComm(skew), u.A)
		var modeled float64
		for i := 0; i < b.N; i++ {
			modeled = g.Apply(x, y).ModeledTime
		}
		b.ReportMetric(modeled*1e6, "modeled-µs")
	})
	b.Run("even-split-penalty", func(b *testing.B) {
		// The even split's modeled time: rank 0's quarter share at 1/4
		// speed dominates each phase.
		uniform := NewDenseGram(cluster.NewComm(cluster.NewPlatform(4, 1)), u.A)
		var penalty float64
		for i := 0; i < b.N; i++ {
			st := uniform.Apply(x, y)
			penalty = st.ModeledTime + 3*float64(st.MaxFlops)*skew.Cost.FlopTime
		}
		b.ReportMetric(penalty*1e6, "modeled-µs")
	})
}
