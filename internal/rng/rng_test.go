package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds agree on %d/100 outputs", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	v := r.Uint64()
	if v == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first output")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for n := 1; n <= 17; n++ {
		seen := make([]bool, n)
		for i := 0; i < 200*n; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("Intn(%d) never produced %d", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	for _, n := range []int{0, 1, 2, 5, 64, 257} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSubsetProperties(t *testing.T) {
	r := New(17)
	f := func(nRaw, kRaw uint16) bool {
		n := int(nRaw%500) + 1
		k := int(kRaw) % (n + 1)
		s := r.Subset(n, k)
		if len(s) != k {
			return false
		}
		for i, v := range s {
			if v < 0 || v >= n {
				return false
			}
			if i > 0 && s[i-1] >= v {
				return false // must be strictly increasing (sorted, distinct)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetFull(t *testing.T) {
	s := New(1).Subset(10, 10)
	for i, v := range s {
		if v != i {
			t.Fatalf("Subset(10,10) = %v, want identity", s)
		}
	}
}

func TestSubsetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Subset(3,4) did not panic")
		}
	}()
	New(1).Subset(3, 4)
}

func TestSubsetUniformity(t *testing.T) {
	// Each index should appear with probability k/n.
	r := New(23)
	const n, k, trials = 20, 5, 20000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range r.Subset(n, k) {
			counts[v]++
		}
	}
	want := float64(trials) * float64(k) / float64(n)
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.1*want {
			t.Fatalf("index %d chosen %d times, want ~%.0f", i, c, want)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.NormFloat64()
	}
	_ = sink
}
