// Package rng provides a deterministic, seedable pseudo-random number
// generator used throughout ExtDict.
//
// All randomness in the library flows through this package so that
// experiments, tests, and benchmarks are exactly reproducible: the same seed
// yields the same dictionary sub-sampling, the same synthetic datasets, and
// the same SGD batch schedule on every run.
//
// The core generator is xoshiro256**, a small, fast, high-quality PRNG with
// a 256-bit state. It is not cryptographically secure, which is fine: it is
// used only for sampling and synthetic data generation.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator (xoshiro256**).
// It is NOT safe for concurrent use; use Split to derive independent
// generators for parallel workers.
type RNG struct {
	s [4]uint64

	// Cached second Gaussian from the Box-Muller pair.
	gauss    float64
	hasGauss bool
}

// New returns a generator seeded from the given seed. Two generators built
// from the same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	// Seed the state with splitmix64 so that even seed=0 yields a
	// well-mixed, non-zero state (xoshiro requires a non-zero state).
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives a new generator from r whose stream is independent of the
// subsequent outputs of r. It is used to hand independent generators to
// parallel workers while keeping the whole run deterministic.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xa5a5a5a55a5a5a5a)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling with rejection to
	// remove modulo bias.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// NormFloat64 returns a standard normal (mean 0, stddev 1) variate using the
// Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	// Fisher-Yates.
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Subset returns k distinct indices drawn uniformly from [0, n), in
// increasing order. It panics if k > n or k < 0.
func (r *RNG) Subset(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Subset requires 0 <= k <= n")
	}
	// Floyd's algorithm: O(k) expected time, O(k) space.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	// Insertion sort; k is typically small relative to n and the output
	// is consumed by column gathers that prefer sorted access.
	for i := 1; i < len(out); i++ {
		v := out[i]
		j := i - 1
		for j >= 0 && out[j] > v {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = v
	}
	return out
}
