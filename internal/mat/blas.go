package mat

// This file holds the level-2/level-3 kernels: matrix-vector products,
// transpose products, general matrix multiply, and the symmetric AᵀA used to
// form Gram matrices. Loop orders are chosen for row-major locality: every
// inner loop streams over contiguous memory.

// MulVec computes y = A·x. len(x) must be A.Cols; y must have length A.Rows
// (allocated when nil). Returns y.
func (m *Dense) MulVec(x, y []float64) []float64 {
	if len(x) != m.Cols {
		panic("mat: MulVec dimension mismatch")
	}
	if y == nil {
		y = make([]float64, m.Rows)
	}
	if len(y) != m.Rows {
		panic("mat: MulVec output length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// MulVecT computes y = Aᵀ·x. len(x) must be A.Rows; y must have length
// A.Cols (allocated when nil). Returns y.
func (m *Dense) MulVecT(x, y []float64) []float64 {
	if len(x) != m.Rows {
		panic("mat: MulVecT dimension mismatch")
	}
	if y == nil {
		y = make([]float64, m.Cols)
	}
	if len(y) != m.Cols {
		panic("mat: MulVecT output length mismatch")
	}
	Zero(y)
	// Accumulate row-by-row: y += x[i] * A[i, :], streaming each row.
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			y[j] += xi * v
		}
	}
	return y
}

// Mul computes C = A·B into a freshly allocated matrix.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic("mat: Mul dimension mismatch")
	}
	c := NewDense(a.Rows, b.Cols)
	MulTo(c, a, b)
	return c
}

// MulTo computes dst = A·B. dst must be A.Rows×B.Cols and must not alias A
// or B.
func MulTo(dst, a, b *Dense) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("mat: MulTo dimension mismatch")
	}
	for i := 0; i < dst.Rows; i++ {
		Zero(dst.Row(i))
	}
	// ikj order: the inner loop walks rows of B and dst contiguously.
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j, v := range brow {
				drow[j] += aik * v
			}
		}
	}
}

// ATA computes the Gram matrix G = AᵀA (A.Cols × A.Cols), exploiting
// symmetry: only the upper triangle is computed, then mirrored.
func ATA(a *Dense) *Dense {
	n := a.Cols
	g := NewDense(n, n)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for p := 0; p < n; p++ {
			vp := row[p]
			if vp == 0 {
				continue
			}
			grow := g.Row(p)
			for q := p; q < n; q++ {
				grow[q] += vp * row[q]
			}
		}
	}
	for p := 0; p < n; p++ {
		for q := p + 1; q < n; q++ {
			g.Set(q, p, g.At(p, q))
		}
	}
	return g
}

// GramColumns computes the k×k Gram matrix of the selected columns of A:
// G[p][q] = <A[:,cols[p]], A[:,cols[q]]>. Used by Batch-OMP, which needs the
// dictionary Gram matrix DᵀD.
func GramColumns(a *Dense, cols []int) *Dense {
	k := len(cols)
	g := NewDense(k, k)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for p := 0; p < k; p++ {
			vp := row[cols[p]]
			if vp == 0 {
				continue
			}
			grow := g.Row(p)
			for q := p; q < k; q++ {
				grow[q] += vp * row[cols[q]]
			}
		}
	}
	for p := 0; p < k; p++ {
		for q := p + 1; q < k; q++ {
			g.Set(q, p, g.At(p, q))
		}
	}
	return g
}
