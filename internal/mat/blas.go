package mat

// This file holds the level-2/level-3 kernels: matrix-vector products,
// transpose products, general matrix multiply, and the symmetric AᵀA used to
// form Gram matrices. Loop orders are chosen for row-major locality — every
// inner loop streams over contiguous memory — and the inner loops themselves
// are the register-blocked primitives in kernels.go.

// MulVec computes y = A·x. len(x) must be A.Cols; y must have length A.Rows
// (allocated when nil). Returns y.
func (m *Dense) MulVec(x, y []float64) []float64 {
	if len(x) != m.Cols {
		panic("mat: MulVec dimension mismatch")
	}
	if y == nil {
		y = make([]float64, m.Rows)
	}
	if len(y) != m.Rows {
		panic("mat: MulVec output length mismatch")
	}
	mulVecRows(m, x, y, 0, m.Rows)
	return y
}

// mulVecRows computes y[i-lo] = <A[i,:], x> for i in [lo, hi), blocking six
// rows per pass so all share each load of x (dot6K); remainder rows drop to
// the narrower dot kernels. y is indexed from 0: y[0] is row lo.
// mulVecBlock is the row-block width — ParMulVec aligns its chunk
// boundaries to it so every row lands in the same block it occupies
// serially.
const mulVecBlock = 6

func mulVecRows(m *Dense, x, y []float64, lo, hi int) {
	i := lo
	for ; i+6 <= hi; i += 6 {
		y[i-lo], y[i-lo+1], y[i-lo+2], y[i-lo+3], y[i-lo+4], y[i-lo+5] =
			dot6K(m.Row(i), m.Row(i+1), m.Row(i+2), m.Row(i+3), m.Row(i+4), m.Row(i+5), x)
	}
	if i+4 <= hi {
		y[i-lo], y[i-lo+1], y[i-lo+2], y[i-lo+3] =
			dot4K(m.Row(i), m.Row(i+1), m.Row(i+2), m.Row(i+3), x)
		i += 4
	}
	if i+2 <= hi {
		y[i-lo], y[i-lo+1] = dot2K(m.Row(i), m.Row(i+1), x)
		i += 2
	}
	if i < hi {
		y[i-lo] = dotK(m.Row(i), x)
	}
}

// MulVecT computes y = Aᵀ·x. len(x) must be A.Rows; y must have length
// A.Cols (allocated when nil). Returns y.
func (m *Dense) MulVecT(x, y []float64) []float64 {
	if len(x) != m.Rows {
		panic("mat: MulVecT dimension mismatch")
	}
	if y == nil {
		y = make([]float64, m.Cols)
	}
	if len(y) != m.Cols {
		panic("mat: MulVecT output length mismatch")
	}
	Zero(y)
	mulVecTRows(m, x, y, 0, m.Rows)
	return y
}

// mulVecTRows accumulates y += Σ_{i in [lo,hi)} x[i]·A[i,:], fusing four row
// streams per pass over y (axpy4K). x is indexed from 0: x[0] is row lo.
func mulVecTRows(m *Dense, x, y []float64, lo, hi int) {
	i := lo
	for ; i+4 <= hi; i += 4 {
		axpy4K(x[i-lo], x[i-lo+1], x[i-lo+2], x[i-lo+3],
			m.Row(i), m.Row(i+1), m.Row(i+2), m.Row(i+3), y)
	}
	for ; i < hi; i++ {
		axpyK(x[i-lo], m.Row(i), y)
	}
}

// Mul computes C = A·B into a freshly allocated matrix.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic("mat: Mul dimension mismatch")
	}
	c := NewDense(a.Rows, b.Cols)
	MulTo(c, a, b)
	return c
}

// MulTo computes dst = A·B. dst must be A.Rows×B.Cols and must not alias A
// or B. The product runs in column tiles of mulToTileJ so the streamed
// panels stay cache-resident; within a tile each dst row is updated by four
// B rows at a time.
func MulTo(dst, a, b *Dense) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("mat: MulTo dimension mismatch")
	}
	for i := 0; i < dst.Rows; i++ {
		Zero(dst.Row(i))
	}
	for jLo := 0; jLo < b.Cols; jLo += mulToTileJ {
		jHi := min(jLo+mulToTileJ, b.Cols)
		mulToPanel(dst, a, b, jLo, jHi)
	}
}

// ATA computes the Gram matrix G = AᵀA (A.Cols × A.Cols), exploiting
// symmetry: only the upper triangle is computed (8-row-blocked, see
// ataPanel), then mirrored.
func ATA(a *Dense) *Dense {
	n := a.Cols
	g := NewDense(n, n)
	ataPanel(a, g, 0, n)
	mirrorLower(g)
	return g
}

// GramColumns computes the k×k Gram matrix of the selected columns of A:
// G[p][q] = <A[:,cols[p]], A[:,cols[q]]>. Used by Batch-OMP, which needs the
// dictionary Gram matrix DᵀD. Four rows of A are blocked per pass, mirroring
// ataPanel but with gathered column indices.
func GramColumns(a *Dense, cols []int) *Dense {
	k := len(cols)
	g := NewDense(k, k)
	i := 0
	for ; i+4 <= a.Rows; i += 4 {
		r0, r1, r2, r3 := a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3)
		for p := 0; p < k; p++ {
			cp := cols[p]
			v0, v1, v2, v3 := r0[cp], r1[cp], r2[cp], r3[cp]
			grow := g.Row(p)
			for q := p; q < k; q++ {
				cq := cols[q]
				grow[q] += (v0*r0[cq] + v1*r1[cq]) + (v2*r2[cq] + v3*r3[cq])
			}
		}
	}
	for ; i < a.Rows; i++ {
		row := a.Row(i)
		for p := 0; p < k; p++ {
			vp := row[cols[p]]
			grow := g.Row(p)
			for q := p; q < k; q++ {
				grow[q] += vp * row[cols[q]]
			}
		}
	}
	mirrorLower(g)
	return g
}
