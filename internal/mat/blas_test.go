package mat

import (
	"math"
	"testing"
	"testing/quick"

	"extdict/internal/rng"
)

func TestMulVecKnown(t *testing.T) {
	a := NewDenseData(2, 3, []float64{
		1, 2, 3,
		4, 5, 6,
	})
	y := a.MulVec([]float64{1, 1, 1}, nil)
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestMulVecTKnown(t *testing.T) {
	a := NewDenseData(2, 3, []float64{
		1, 2, 3,
		4, 5, 6,
	})
	y := a.MulVecT([]float64{1, 2}, nil)
	want := []float64{9, 12, 15}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MulVecT = %v, want %v", y, want)
		}
	}
}

func TestMulVecTMatchesTransposeMulVec(t *testing.T) {
	r := rng.New(4)
	a := randomDense(r, 17, 9)
	x := make([]float64, 17)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	got := a.MulVecT(x, nil)
	want := a.T().MulVec(x, nil)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 2, []float64{5, 6, 7, 8})
	c := Mul(a, b)
	want := NewDenseData(2, 2, []float64{19, 22, 43, 50})
	if !Equal(c, want, 1e-12) {
		t.Fatalf("Mul = %v", c.Data)
	}
}

func TestMulIdentity(t *testing.T) {
	r := rng.New(5)
	a := randomDense(r, 6, 6)
	id := NewDense(6, 6)
	for i := 0; i < 6; i++ {
		id.Set(i, i, 1)
	}
	if !Equal(Mul(a, id), a, 1e-12) || !Equal(Mul(id, a), a, 1e-12) {
		t.Fatal("identity multiplication failed")
	}
}

func TestMulAssociativity(t *testing.T) {
	r := rng.New(6)
	f := func(seed uint16) bool {
		rr := rng.New(uint64(seed))
		m, k, n, p := 2+rr.Intn(6), 2+rr.Intn(6), 2+rr.Intn(6), 2+rr.Intn(6)
		a := randomDense(r, m, k)
		b := randomDense(r, k, n)
		c := randomDense(r, n, p)
		left := Mul(Mul(a, b), c)
		right := Mul(a, Mul(b, c))
		return Equal(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestATAMatchesMul(t *testing.T) {
	r := rng.New(7)
	a := randomDense(r, 13, 7)
	g := ATA(a)
	want := Mul(a.T(), a)
	if !Equal(g, want, 1e-10) {
		t.Fatal("ATA differs from explicit AᵀA")
	}
	// Symmetry.
	for i := 0; i < g.Rows; i++ {
		for j := 0; j < g.Cols; j++ {
			if g.At(i, j) != g.At(j, i) {
				t.Fatal("ATA not symmetric")
			}
		}
	}
}

func TestGramColumns(t *testing.T) {
	r := rng.New(8)
	a := randomDense(r, 11, 9)
	cols := []int{2, 5, 7}
	g := GramColumns(a, cols)
	sub := a.ColSlice(cols)
	want := ATA(sub)
	if !Equal(g, want, 1e-10) {
		t.Fatal("GramColumns differs from ATA of column slice")
	}
}

func TestParMulVecMatchesSerial(t *testing.T) {
	r := rng.New(9)
	a := randomDense(r, 300, 41)
	x := make([]float64, 41)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	got := a.ParMulVec(x, nil)
	want := a.MulVec(x, nil)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("ParMulVec mismatch at %d", i)
		}
	}
}

func TestParMulToMatchesSerial(t *testing.T) {
	r := rng.New(10)
	a := randomDense(r, 120, 30)
	b := randomDense(r, 30, 25)
	got := NewDense(120, 25)
	ParMulTo(got, a, b)
	want := Mul(a, b)
	if !Equal(got, want, 1e-10) {
		t.Fatal("ParMulTo differs from Mul")
	}
}

func TestVectorOps(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Fatal("Dot wrong")
	}
	if Norm1(x) != 6 || NormInf(y) != 6 {
		t.Fatal("norms wrong")
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-14 {
		t.Fatal("Norm2 wrong")
	}
	z := CopyVec(y)
	Axpy(2, x, z)
	if z[0] != 6 || z[2] != 12 {
		t.Fatalf("Axpy = %v", z)
	}
	SubVec(z, z, y)
	if z[0] != 2 {
		t.Fatal("SubVec wrong")
	}
	AddVec(z, z, z)
	if z[0] != 4 {
		t.Fatal("AddVec wrong")
	}
	ScaleVec(0.5, z)
	if z[0] != 2 {
		t.Fatal("ScaleVec wrong")
	}
	Zero(z)
	if Norm1(z) != 0 {
		t.Fatal("Zero wrong")
	}
}

func BenchmarkMulVec1024(b *testing.B) {
	r := rng.New(1)
	a := randomDense(r, 1024, 1024)
	x := make([]float64, 1024)
	y := make([]float64, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(x, y)
	}
}

func BenchmarkATA256(b *testing.B) {
	r := rng.New(1)
	a := randomDense(r, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ATA(a)
	}
}
