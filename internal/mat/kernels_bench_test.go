package mat

import (
	"fmt"
	"testing"

	"extdict/internal/rng"
)

// Scalar reference kernels: the pre-optimization single-accumulator loops.
// Benchmarked alongside the blocked kernels in the same binary and the same
// process, they give a machine-drift-free speedup ratio — the before/after
// numbers in DESIGN.md and BENCH_PR5.json come from these pairs.

func refMulVec(m *Dense, x, y []float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

func refMulVecT(m *Dense, x, y []float64) {
	for i := range y {
		y[i] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			y[j] += xi * v
		}
	}
}

func refATA(a *Dense) *Dense {
	n := a.Cols
	g := NewDense(n, n)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for p := 0; p < n; p++ {
			vp := row[p]
			if vp == 0 {
				continue
			}
			grow := g.Row(p)
			for q := p; q < n; q++ {
				grow[q] += vp * row[q]
			}
		}
	}
	mirrorLower(g)
	return g
}

func benchMatrix(rows, cols int, seed uint64) *Dense {
	r := rng.New(seed)
	a := NewDense(rows, cols)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	return a
}

func benchVec(n int, seed uint64) []float64 {
	r := rng.New(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

// Sizes span the paper's operating regime: M=1024 signals, dictionaries /
// Gram sizes of a few hundred columns.

func BenchmarkMulVecKernel(b *testing.B) {
	for _, n := range []int{256, 1024} {
		a := benchMatrix(n, n, 1)
		x, y := benchVec(n, 2), make([]float64, n)
		b.Run(fmt.Sprintf("blocked/n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(8 * n * n))
			for i := 0; i < b.N; i++ {
				a.MulVec(x, y)
			}
		})
		b.Run(fmt.Sprintf("scalar-ref/n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(8 * n * n))
			for i := 0; i < b.N; i++ {
				refMulVec(a, x, y)
			}
		})
	}
}

func BenchmarkMulVecTKernel(b *testing.B) {
	const n = 1024
	a := benchMatrix(n, n, 3)
	x, y := benchVec(n, 4), make([]float64, n)
	b.Run("blocked", func(b *testing.B) {
		b.SetBytes(8 * n * n)
		for i := 0; i < b.N; i++ {
			a.MulVecT(x, y)
		}
	})
	b.Run("scalar-ref", func(b *testing.B) {
		b.SetBytes(8 * n * n)
		for i := 0; i < b.N; i++ {
			refMulVecT(a, x, y)
		}
	})
}

func BenchmarkATAKernel(b *testing.B) {
	for _, n := range []int{128, 256} {
		a := benchMatrix(n, n, 5)
		b.Run(fmt.Sprintf("blocked/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ATA(a)
			}
		})
		b.Run(fmt.Sprintf("scalar-ref/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				refATA(a)
			}
		})
	}
}

func BenchmarkMulToKernel(b *testing.B) {
	const n = 256
	a, c := benchMatrix(n, n, 6), benchMatrix(n, n, 7)
	dst := NewDense(n, n)
	b.SetBytes(int64(8 * n * n * n / 1024)) // per-op traffic is O(n³/tile); nominal
	for i := 0; i < b.N; i++ {
		MulTo(dst, a, c)
	}
}

func BenchmarkCholeskyFactorize(b *testing.B) {
	const n = 256
	a := benchMatrix(n+8, n, 8)
	s := ATA(a) // SPD
	c := NewCholesky(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		if err := c.Factorize(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParKernels(b *testing.B) {
	const rows, cols = 2048, 256
	a := benchMatrix(rows, cols, 9)
	x, xt := benchVec(cols, 10), benchVec(rows, 11)
	y, yt := make([]float64, rows), make([]float64, cols)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("ParMulVec/w=%d", w), func(b *testing.B) {
			defer func(old int) { Workers = old }(Workers)
			Workers = w
			for i := 0; i < b.N; i++ {
				a.ParMulVec(x, y)
			}
		})
		b.Run(fmt.Sprintf("ParMulVecT/w=%d", w), func(b *testing.B) {
			defer func(old int) { Workers = old }(Workers)
			Workers = w
			for i := 0; i < b.N; i++ {
				a.ParMulVecT(xt, yt)
			}
		})
		b.Run(fmt.Sprintf("ParATA/w=%d", w), func(b *testing.B) {
			defer func(old int) { Workers = old }(Workers)
			Workers = w
			for i := 0; i < b.N; i++ {
				ParATA(a)
			}
		})
	}
}
