package mat

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization encounters
// a non-positive pivot, i.e. the input matrix is not (numerically) symmetric
// positive definite.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix S = L·Lᵀ. The factor supports growing by one row/column at
// a time, which is the core trick of Batch-OMP: when an atom is added to the
// active set, the factorization of the active Gram matrix is updated in
// O(k²) instead of recomputed in O(k³).
type Cholesky struct {
	n int
	// l stores the lower triangle row-major with stride cap (the maximum
	// size the factor can grow to without reallocating).
	l      []float64
	stride int
}

// NewCholesky returns an empty factor able to grow to capacity×capacity.
func NewCholesky(capacity int) *Cholesky {
	if capacity < 1 {
		capacity = 1
	}
	return &Cholesky{l: make([]float64, capacity*capacity), stride: capacity}
}

// Size returns the current dimension of the factor.
func (c *Cholesky) Size() int { return c.n }

// Reset empties the factor so it can be reused for a new problem.
func (c *Cholesky) Reset() { c.n = 0 }

func (c *Cholesky) at(i, j int) float64 { return c.l[i*c.stride+j] }

func (c *Cholesky) set(i, j int, v float64) { c.l[i*c.stride+j] = v }

// grow ensures capacity for an (n+1)-dimensional factor.
func (c *Cholesky) growTo(n int) {
	if n <= c.stride {
		return
	}
	ns := c.stride * 2
	if ns < n {
		ns = n
	}
	nl := make([]float64, ns*ns)
	for i := 0; i < c.n; i++ {
		copy(nl[i*ns:i*ns+c.n], c.l[i*c.stride:i*c.stride+c.n])
	}
	c.l = nl
	c.stride = ns
}

// Append extends the factor from S (n×n) to S' (n+1 × n+1) where the new row
// of S' is [col..., diag]: col holds the n cross terms S'[n, 0..n-1] in the
// *original ordering of appended rows*, and diag = S'[n, n].
//
// It solves L·w = col, sets the new row of L to [wᵀ, sqrt(diag - wᵀw)], and
// returns ErrNotPositiveDefinite if the new pivot is not strictly positive.
func (c *Cholesky) Append(col []float64, diag float64) error {
	if len(col) != c.n {
		panic("mat: Cholesky.Append col length mismatch")
	}
	c.growTo(c.n + 1)
	n := c.n
	// Forward substitution: w = L⁻¹ col, written directly into the new row.
	row := c.l[n*c.stride : n*c.stride+n]
	for i := 0; i < n; i++ {
		li := c.l[i*c.stride : i*c.stride+i]
		s := col[i] - dotK(li, row)
		row[i] = s / c.at(i, i)
	}
	var wtw float64
	for _, v := range row {
		wtw += v * v
	}
	pivot := diag - wtw
	if pivot <= 0 || math.IsNaN(pivot) {
		return ErrNotPositiveDefinite
	}
	c.set(n, n, math.Sqrt(pivot))
	c.n = n + 1
	return nil
}

// SolveInPlace solves (L·Lᵀ)·x = b in place: on return b holds x.
// len(b) must equal Size.
func (c *Cholesky) SolveInPlace(b []float64) {
	if len(b) != c.n {
		panic("mat: Cholesky.SolveInPlace length mismatch")
	}
	n := c.n
	// Forward: L·y = b.
	for i := 0; i < n; i++ {
		row := c.l[i*c.stride : i*c.stride+i]
		s := b[i] - dotK(row, b)
		b[i] = s / c.at(i, i)
	}
	// Backward: Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= c.at(j, i) * b[j]
		}
		b[i] = s / c.at(i, i)
	}
}

// choleskyBlock is the panel width of the blocked Factorize. Within a panel
// the trailing correction loop touches at most choleskyBlock columns (an
// L1-resident strip); everything left of the panel is applied with the
// unrolled dot kernel in one contiguous pass per element.
const choleskyBlock = 64

// Factorize computes the full factorization of the symmetric positive
// definite matrix s, replacing any existing factor. Only the lower triangle
// of s is read.
//
// The loop nest is the left-looking blocked ordering: rows are processed in
// panels of choleskyBlock columns, and for element (i, j) the update from
// columns left of the panel — the dominant cost — is a single contiguous
// dot product (dotK) of finished row prefixes. It computes exactly the same
// multiply-subtract set as the textbook Cholesky–Crout loop, regrouped.
func (c *Cholesky) Factorize(s *Dense) error {
	if s.Rows != s.Cols {
		panic("mat: Cholesky.Factorize requires a square matrix")
	}
	n := s.Rows
	c.n = 0
	c.growTo(n)
	for j0 := 0; j0 < n; j0 += choleskyBlock {
		j1 := min(j0+choleskyBlock, n)
		for i := j0; i < n; i++ {
			li := c.l[i*c.stride : i*c.stride+i+1]
			for j := j0; j <= i && j < j1; j++ {
				lj := c.l[j*c.stride : j*c.stride+j+1]
				// Columns [0, j0): finished in earlier panels, one dot.
				sum := s.At(i, j) - dotK(li[:j0], lj[:j0])
				// Columns [j0, j): the in-panel strip, at most
				// choleskyBlock wide.
				for k := j0; k < j; k++ {
					sum -= li[k] * lj[k]
				}
				if i == j {
					if sum <= 0 || math.IsNaN(sum) {
						return ErrNotPositiveDefinite
					}
					li[i] = math.Sqrt(sum)
				} else {
					li[j] = sum / lj[j]
				}
			}
		}
	}
	c.n = n
	return nil
}

// SolveLeastSquares solves min_x ‖A·x - b‖₂ via the normal equations
// AᵀA·x = Aᵀb with a Cholesky factorization, ridge-regularized by eps·I for
// numerical robustness (pass eps = 0 for the exact normal equations).
// It is the pseudo-inverse application D⁺·b used by the CSS baselines.
func SolveLeastSquares(a *Dense, b []float64, eps float64) ([]float64, error) {
	if len(b) != a.Rows {
		panic("mat: SolveLeastSquares length mismatch")
	}
	g := ATA(a)
	if eps > 0 {
		for i := 0; i < g.Rows; i++ {
			g.Set(i, i, g.At(i, i)+eps)
		}
	}
	var ch Cholesky
	ch.l = make([]float64, g.Rows*g.Rows)
	ch.stride = g.Rows
	if err := ch.Factorize(g); err != nil {
		return nil, err
	}
	x := a.MulVecT(b, nil)
	ch.SolveInPlace(x)
	return x, nil
}
