package mat

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// poolRoundTrip pushes one job through the pool (inline if every worker is
// busy) and waits for it, guaranteeing the lazy start has run.
func poolRoundTrip() {
	var wg sync.WaitGroup
	wg.Add(1)
	if !trySubmit(func() {}, &wg) {
		wg.Done()
	}
	wg.Wait()
}

// TestPoolDrainStopsWorkers proves the test-only drain hook retires every
// worker — the goroutine count returns to the pre-pool baseline — and
// rearms the lazy start so the next kernel restarts the pool transparently.
func TestPoolDrainStopsWorkers(t *testing.T) {
	drainPool() // quiesce whatever earlier tests started
	base := runtime.NumGoroutine()

	poolRoundTrip()
	if PoolPeakWorkers() == 0 && runtime.NumGoroutine() <= base {
		t.Fatalf("pool did not start any workers")
	}

	drainPool()
	// poolWorkers.Wait() has returned, but the runtime's goroutine
	// accounting can lag the final worker exits briefly.
	got := runtime.NumGoroutine()
	for i := 0; i < 400 && got > base; i++ {
		time.Sleep(5 * time.Millisecond)
		got = runtime.NumGoroutine()
	}
	if got > base {
		t.Fatalf("pool leaked goroutines: %d after drain, baseline %d", got, base)
	}
	if PoolPeakWorkers() != 0 {
		t.Fatalf("drain did not reset the peak, got %d", PoolPeakWorkers())
	}

	// The pool restarts after a drain and is drainable again.
	poolRoundTrip()
	if poolCh == nil {
		t.Fatalf("pool did not restart after drain")
	}
	drainPool()
}

// TestPoolBudgetBounded re-proves the budget invariant through a restart
// cycle: after a drain, the restarted pool's concurrent high-water mark
// still never exceeds the budget.
func TestPoolBudgetBounded(t *testing.T) {
	drainPool()
	var wg sync.WaitGroup
	for i := 0; i < 4*PoolBudget(); i++ {
		wg.Add(1)
		if !trySubmit(func() { time.Sleep(time.Millisecond) }, &wg) {
			wg.Done()
		}
	}
	wg.Wait()
	if peak := PoolPeakWorkers(); peak > PoolBudget() {
		t.Fatalf("pool peak %d exceeds budget %d", peak, PoolBudget())
	}
	drainPool()
}
