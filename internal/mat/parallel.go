package mat

import (
	"math"
	"runtime"
	"sync"
)

// Workers is the default number of chunks the parallel kernels split their
// work into. It is a variable so tests can pin it: at a pinned value every
// parallel kernel here is deterministic run-to-run (fixed chunk boundaries,
// fixed merge order).
var Workers = runtime.GOMAXPROCS(0)

// parallelThreshold is the minimum problem size worth splitting; below it
// the chunk bookkeeping costs more than the work.
const parallelThreshold = 256

// ParallelChunks partitions [0, n) into exactly w balanced chunks — chunk c
// is [c·n/w, (c+1)·n/w), sizes differing by at most one — and runs
// body(c, lo, hi) once per chunk, covering every index exactly once. Chunks
// beyond the first are offered to the shared worker pool; chunk 0, and any
// chunk the pool is too busy to take, runs on the calling goroutine. w is
// clamped to [1, n]; the chunk boundaries depend only on (n, w), never on
// scheduling.
func ParallelChunks(n, w int, body func(c, lo, hi int)) {
	if n <= 0 {
		return
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		body(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for c := 1; c < w; c++ {
		c, lo, hi := c, c*n/w, (c+1)*n/w
		wg.Add(1)
		if !trySubmit(func() { body(c, lo, hi) }, &wg) {
			body(c, lo, hi)
			wg.Done()
		}
	}
	body(0, 0, n/w)
	wg.Wait()
}

// parallelFor runs body(lo, hi) over a partition of [0, n) in at most
// Workers chunks via the shared pool. Small n runs inline.
func parallelFor(n int, body func(lo, hi int)) {
	w := Workers
	if w <= 1 || n < parallelThreshold {
		if n > 0 {
			body(0, n)
		}
		return
	}
	ParallelChunks(n, w, func(_, lo, hi int) { body(lo, hi) })
}

// ParMulVec computes y = A·x with output rows split across the worker pool.
// Semantics match MulVec. Each y[i] is produced by exactly one chunk with the
// serial kernel, and chunk boundaries are rounded down to multiples of the
// mulVecBlock row blocking so every row lands in the same dot-kernel group
// it occupies serially — the result is deterministic at any worker count and
// matches MulVec to the last bit.
func (m *Dense) ParMulVec(x, y []float64) []float64 {
	if len(x) != m.Cols {
		panic("mat: ParMulVec dimension mismatch")
	}
	if y == nil {
		y = make([]float64, m.Rows)
	}
	if len(y) != m.Rows {
		panic("mat: ParMulVec output length mismatch")
	}
	n := m.Rows
	w := Workers
	if w <= 1 || n < parallelThreshold {
		mulVecRows(m, x, y, 0, n)
		return y
	}
	if w > n/mulVecBlock {
		w = n / mulVecBlock // keep every boundary block-aligned, chunks non-empty
	}
	align := func(r int) int { return r - r%mulVecBlock }
	var wg sync.WaitGroup
	for c := 1; c < w; c++ {
		lo, hi := align(c*n/w), align((c+1)*n/w)
		if c == w-1 {
			hi = n
		}
		wg.Add(1)
		if !trySubmit(func() { mulVecRows(m, x, y[lo:hi], lo, hi) }, &wg) {
			mulVecRows(m, x, y[lo:hi], lo, hi)
			wg.Done()
		}
	}
	hi0 := align(n / w)
	mulVecRows(m, x, y[:hi0], 0, hi0)
	wg.Wait()
	return y
}

// ParMulTo computes dst = A·B with output rows split across the worker pool.
// Semantics match MulTo; each dst row is owned by one chunk, so the result
// is deterministic at any worker count.
func ParMulTo(dst, a, b *Dense) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("mat: ParMulTo dimension mismatch")
	}
	parallelFor(a.Rows, func(lo, hi int) {
		sub := &Dense{Rows: hi - lo, Cols: a.Cols, Stride: a.Stride, Data: a.Data[lo*a.Stride:]}
		dsub := &Dense{Rows: hi - lo, Cols: dst.Cols, Stride: dst.Stride, Data: dst.Data[lo*dst.Stride:]}
		for i := 0; i < dsub.Rows; i++ {
			Zero(dsub.Row(i))
		}
		for jLo := 0; jLo < b.Cols; jLo += mulToTileJ {
			jHi := min(jLo+mulToTileJ, b.Cols)
			mulToPanel(dsub, sub, b, jLo, jHi)
		}
	})
}

// parMulVecTBufs recycles the per-worker partial vectors of ParMulVecT.
var parMulVecTBufs = sync.Pool{New: func() any { return new([]float64) }}

// ParMulVecT computes y = Aᵀ·x with input rows split across the worker pool.
// Semantics match MulVecT. Each chunk accumulates into its own partial
// buffer and the partials are merged in fixed chunk order, so at a pinned
// Workers the result is bit-identical run-to-run (and within 1e-12-grade
// rounding of the serial MulVecT; with Workers <= 1 it IS the serial path).
func (m *Dense) ParMulVecT(x, y []float64) []float64 {
	if len(x) != m.Rows {
		panic("mat: ParMulVecT dimension mismatch")
	}
	if y == nil {
		y = make([]float64, m.Cols)
	}
	if len(y) != m.Cols {
		panic("mat: ParMulVecT output length mismatch")
	}
	w := Workers
	if w > m.Rows {
		w = m.Rows
	}
	if w <= 1 || m.Rows < parallelThreshold {
		return m.MulVecT(x, y)
	}
	partials := make([][]float64, w)
	ParallelChunks(m.Rows, w, func(c, lo, hi int) {
		bp := parMulVecTBufs.Get().(*[]float64)
		buf := *bp
		if cap(buf) < m.Cols {
			buf = make([]float64, m.Cols)
		}
		buf = buf[:m.Cols]
		Zero(buf)
		mulVecTRows(m, x[lo:hi], buf, lo, hi)
		partials[c] = buf
	})
	Zero(y)
	for _, p := range partials {
		AddVec(y, y, p)
		parMulVecTBufs.Put(&p)
	}
	return y
}

// ParATA computes G = AᵀA with the Gram matrix's rows split across the
// worker pool. Semantics match ATA. Each output element is owned by exactly
// one chunk and accumulated in the same order the serial ataPanel uses, so
// the result is deterministic at ANY worker count and bit-identical to ATA.
// Chunk boundaries are area-balanced over the upper triangle (row p costs
// n-p elements), depending only on (n, w).
func ParATA(a *Dense) *Dense {
	n := a.Cols
	g := NewDense(n, n)
	w := Workers
	if w > n {
		w = n
	}
	if w <= 1 || n < 64 || a.Rows*n < parallelThreshold*parallelThreshold {
		ataPanel(a, g, 0, n)
		mirrorLower(g)
		return g
	}
	bounds := ataChunkBounds(n, w)
	var wg sync.WaitGroup
	for c := 1; c < len(bounds)-1; c++ {
		lo, hi := bounds[c], bounds[c+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		if !trySubmit(func() { ataPanel(a, g, lo, hi) }, &wg) {
			ataPanel(a, g, lo, hi)
			wg.Done()
		}
	}
	ataPanel(a, g, bounds[0], bounds[1])
	wg.Wait()
	mirrorLower(g)
	return g
}

// ataChunkBounds splits the rows of an n×n upper triangle into w contiguous
// chunks of roughly equal element count (row p holds n-p elements): boundary
// c sits where the triangle's area prefix reaches c/w. Deterministic in
// (n, w).
func ataChunkBounds(n, w int) []int {
	bounds := make([]int, w+1)
	for c := 1; c < w; c++ {
		p := n - int(float64(n)*math.Sqrt(1-float64(c)/float64(w)))
		if p < bounds[c-1] {
			p = bounds[c-1]
		}
		if p > n {
			p = n
		}
		bounds[c] = p
	}
	bounds[w] = n
	return bounds
}
