package mat

import (
	"runtime"
	"sync"
)

// Workers is the default number of goroutines used by the parallel kernels.
// It is a variable so tests can pin it for determinism of scheduling-related
// behaviour (results are identical either way).
var Workers = runtime.GOMAXPROCS(0)

// parallelFor runs body(lo, hi) over a partition of [0, n) across at most
// Workers goroutines. When n is small the body runs inline.
func parallelFor(n int, body func(lo, hi int)) {
	w := Workers
	if w > n {
		w = n
	}
	if w <= 1 || n < 256 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParMulVec computes y = A·x across goroutines, partitioning output rows.
// Semantics match MulVec.
func (m *Dense) ParMulVec(x, y []float64) []float64 {
	if len(x) != m.Cols {
		panic("mat: ParMulVec dimension mismatch")
	}
	if y == nil {
		y = make([]float64, m.Rows)
	}
	if len(y) != m.Rows {
		panic("mat: ParMulVec output length mismatch")
	}
	parallelFor(m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			var s float64
			for j, v := range row {
				s += v * x[j]
			}
			y[i] = s
		}
	})
	return y
}

// ParMulTo computes dst = A·B across goroutines, partitioning output rows.
// Semantics match MulTo.
func ParMulTo(dst, a, b *Dense) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("mat: ParMulTo dimension mismatch")
	}
	parallelFor(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dst.Row(i)
			Zero(drow)
			arow := a.Row(i)
			for k, aik := range arow {
				if aik == 0 {
					continue
				}
				brow := b.Row(k)
				for j, v := range brow {
					drow[j] += aik * v
				}
			}
		}
	})
}
