package mat

import (
	"math"
	"testing"
	"testing/quick"

	"extdict/internal/rng"
)

// randomSPD returns a random symmetric positive definite n×n matrix.
func randomSPD(r *rng.RNG, n int) *Dense {
	b := randomDense(r, n+3, n)
	g := ATA(b)
	for i := 0; i < n; i++ {
		g.Set(i, i, g.At(i, i)+0.1) // ensure strict positive definiteness
	}
	return g
}

func TestCholeskyFactorizeSolve(t *testing.T) {
	r := rng.New(21)
	for _, n := range []int{1, 2, 3, 8, 20} {
		s := randomSPD(r, n)
		ch := NewCholesky(n)
		if err := ch.Factorize(s); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := s.MulVec(x, nil)
		ch.SolveInPlace(b)
		for i := range x {
			if math.Abs(b[i]-x[i]) > 1e-8 {
				t.Fatalf("n=%d: solve error %v at %d", n, math.Abs(b[i]-x[i]), i)
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	s := NewDenseData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	ch := NewCholesky(2)
	if err := ch.Factorize(s); err != ErrNotPositiveDefinite {
		t.Fatalf("got %v, want ErrNotPositiveDefinite", err)
	}
}

func TestCholeskyAppendMatchesBatch(t *testing.T) {
	r := rng.New(22)
	const n = 12
	s := randomSPD(r, n)

	inc := NewCholesky(2) // deliberately small to exercise growth
	for k := 0; k < n; k++ {
		col := make([]float64, k)
		for j := 0; j < k; j++ {
			col[j] = s.At(k, j)
		}
		if err := inc.Append(col, s.At(k, k)); err != nil {
			t.Fatalf("Append step %d: %v", k, err)
		}
	}

	batch := NewCholesky(n)
	if err := batch.Factorize(s); err != nil {
		t.Fatal(err)
	}

	if inc.Size() != n || batch.Size() != n {
		t.Fatal("size mismatch")
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if math.Abs(inc.at(i, j)-batch.at(i, j)) > 1e-9 {
				t.Fatalf("factor mismatch at (%d,%d): %v vs %v",
					i, j, inc.at(i, j), batch.at(i, j))
			}
		}
	}
}

func TestCholeskyAppendDetectsDependence(t *testing.T) {
	// Second atom identical to the first: Gram matrix singular.
	ch := NewCholesky(2)
	if err := ch.Append(nil, 1); err != nil {
		t.Fatal(err)
	}
	if err := ch.Append([]float64{1}, 1); err != ErrNotPositiveDefinite {
		t.Fatalf("got %v, want ErrNotPositiveDefinite", err)
	}
	if ch.Size() != 1 {
		t.Fatal("failed Append must not grow the factor")
	}
}

func TestCholeskyReset(t *testing.T) {
	ch := NewCholesky(4)
	if err := ch.Append(nil, 4); err != nil {
		t.Fatal(err)
	}
	ch.Reset()
	if ch.Size() != 0 {
		t.Fatal("Reset did not empty the factor")
	}
	if err := ch.Append(nil, 9); err != nil {
		t.Fatal(err)
	}
	b := []float64{18}
	ch.SolveInPlace(b)
	if math.Abs(b[0]-2) > 1e-12 {
		t.Fatalf("solve after reset = %v, want 2", b[0])
	}
}

func TestSolveLeastSquaresExact(t *testing.T) {
	// Overdetermined consistent system: recover x exactly.
	r := rng.New(23)
	a := randomDense(r, 20, 6)
	x := make([]float64, 6)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	b := a.MulVec(x, nil)
	got, err := SolveLeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-8 {
			t.Fatalf("least squares error at %d: %v vs %v", i, got[i], x[i])
		}
	}
}

func TestSolveLeastSquaresResidualOrthogonality(t *testing.T) {
	// Property: at the minimizer, Aᵀ(Ax - b) = 0.
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) + 1)
		m, n := 10+r.Intn(20), 2+r.Intn(6)
		a := randomDense(r, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := SolveLeastSquares(a, b, 0)
		if err != nil {
			return true // singular by chance: skip
		}
		res := a.MulVec(x, nil)
		SubVec(res, res, b)
		grad := a.MulVecT(res, nil)
		return NormInf(grad) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCholeskyAppend64(b *testing.B) {
	r := rng.New(1)
	const n = 64
	s := randomSPD(r, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch := NewCholesky(n)
		for k := 0; k < n; k++ {
			col := make([]float64, k)
			for j := 0; j < k; j++ {
				col[j] = s.At(k, j)
			}
			if err := ch.Append(col, s.At(k, k)); err != nil {
				b.Fatal(err)
			}
		}
	}
}
