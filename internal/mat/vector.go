package mat

import "math"

// Dot returns the inner product of x and y, which must have equal length.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: Dot length mismatch")
	}
	return dotK(x, y)
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Norm1 returns the 1-norm (sum of absolute values) of x.
func Norm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// NormInf returns the max-norm of x.
func NormInf(x []float64) float64 {
	var s float64
	for _, v := range x {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// Axpy computes y += alpha*x in place. Lengths must match. The unrolled
// update is element-wise and therefore bit-identical to the scalar loop.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mat: Axpy length mismatch")
	}
	axpyK(alpha, x, y)
}

// ScaleVec multiplies x by alpha in place.
func ScaleVec(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// CopyVec returns a fresh copy of x.
func CopyVec(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// SubVec computes dst = a - b. dst may alias a or b; all lengths must match.
func SubVec(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("mat: SubVec length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// AddVec computes dst = a + b. dst may alias a or b; all lengths must match.
func AddVec(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("mat: AddVec length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Zero clears x in place.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}
