package mat

import (
	"math"
	"testing"

	"extdict/internal/rng"
)

func randomDense(r *rng.RNG, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

func TestNewDenseShape(t *testing.T) {
	m := NewDense(3, 5)
	if m.Rows != 3 || m.Cols != 5 || m.Stride != 5 || len(m.Data) != 15 {
		t.Fatalf("unexpected shape: %+v", m)
	}
}

func TestNewDensePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(-1, 2)
}

func TestNewDenseDataLengthCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDenseData(2, 2, []float64{1, 2, 3})
}

func TestAtSetRoundTrip(t *testing.T) {
	m := NewDense(4, 3)
	m.Set(2, 1, 7.5)
	//lint:ignore nofloateq Set/At must round-trip the stored bits unchanged
	if m.At(2, 1) != 7.5 {
		t.Fatalf("At(2,1) = %v", m.At(2, 1))
	}
	//lint:ignore nofloateq row-major layout check needs the exact stored value
	if m.Data[2*3+1] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestRowColAccess(t *testing.T) {
	m := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	row := m.Row(1)
	if row[0] != 4 || row[2] != 6 {
		t.Fatalf("Row(1) = %v", row)
	}
	col := m.Col(1, nil)
	if col[0] != 2 || col[1] != 5 {
		t.Fatalf("Col(1) = %v", col)
	}
	m.SetCol(0, []float64{10, 20})
	if m.At(0, 0) != 10 || m.At(1, 0) != 20 {
		t.Fatal("SetCol failed")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases parent storage")
	}
}

func TestColSlice(t *testing.T) {
	m := NewDenseData(2, 4, []float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
	})
	s := m.ColSlice([]int{3, 0})
	want := NewDenseData(2, 2, []float64{4, 1, 8, 5})
	if !Equal(s, want, 0) {
		t.Fatalf("ColSlice = %v", s.Data)
	}
}

func TestColRangeView(t *testing.T) {
	m := NewDenseData(2, 4, []float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
	})
	v := m.ColRange(1, 3)
	if v.Rows != 2 || v.Cols != 2 {
		t.Fatalf("view shape %dx%d", v.Rows, v.Cols)
	}
	if v.At(0, 0) != 2 || v.At(1, 1) != 7 {
		t.Fatal("view content wrong")
	}
	v.Set(0, 0, 42)
	if m.At(0, 1) != 42 {
		t.Fatal("view does not alias parent")
	}
}

func TestTranspose(t *testing.T) {
	r := rng.New(1)
	m := randomDense(r, 5, 3)
	tt := m.T().T()
	if !Equal(m, tt, 0) {
		t.Fatal("double transpose not identity")
	}
	mt := m.T()
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if mt.At(j, i) != m.At(i, j) {
				t.Fatalf("T mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestFrobNorm(t *testing.T) {
	m := NewDenseData(2, 2, []float64{3, 0, 0, 4})
	if got := m.FrobNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("FrobNorm = %v, want 5", got)
	}
	z := NewDense(3, 3)
	if z.FrobNorm() != 0 {
		t.Fatal("zero matrix norm not 0")
	}
}

func TestFrobNormExtremeValues(t *testing.T) {
	m := NewDenseData(1, 2, []float64{1e200, 1e200})
	got := m.FrobNorm()
	want := 1e200 * math.Sqrt2
	if math.IsInf(got, 0) || math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("FrobNorm overflowed: %v", got)
	}
}

func TestNormalizeColumns(t *testing.T) {
	r := rng.New(2)
	m := randomDense(r, 10, 6)
	m.SetCol(3, make([]float64, 10)) // zero column must survive
	norms := m.NormalizeColumns()
	for j := 0; j < m.Cols; j++ {
		n := Norm2(m.Col(j, nil))
		if j == 3 {
			if n != 0 || norms[3] != 0 {
				t.Fatal("zero column mishandled")
			}
			continue
		}
		if math.Abs(n-1) > 1e-12 {
			t.Fatalf("column %d norm %v after normalization", j, n)
		}
		if norms[j] <= 0 {
			t.Fatalf("returned norm %v not positive", norms[j])
		}
	}
}

func TestScaleAddSub(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 2, []float64{4, 3, 2, 1})
	a.Add(b)
	if a.At(0, 0) != 5 || a.At(1, 1) != 5 {
		t.Fatal("Add wrong")
	}
	a.Sub(b)
	if a.At(0, 1) != 2 {
		t.Fatal("Sub wrong")
	}
	a.Scale(2)
	if a.At(1, 0) != 6 {
		t.Fatal("Scale wrong")
	}
}

func TestEqualShapes(t *testing.T) {
	if Equal(NewDense(2, 2), NewDense(2, 3), 1) {
		t.Fatal("Equal ignored shape mismatch")
	}
}
