package mat

import (
	"math"
	"sync"
	"testing"

	"extdict/internal/rng"
)

// TestParallelChunksCoversExactlyOnce is the partition-arithmetic audit: for
// every (n, w) in the grid, every index in [0, n) must be visited exactly
// once, chunk ids must be distinct, and chunk sizes must be balanced (differ
// by at most one).
func TestParallelChunksCoversExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 255, 256, 257, 1000} {
		for _, w := range []int{1, 2, 3, 7, 8} {
			visits := make([]int32, n)
			var mu sync.Mutex
			sizes := map[int]int{}
			ParallelChunks(n, w, func(c, lo, hi int) {
				mu.Lock()
				for i := lo; i < hi; i++ {
					visits[i]++
				}
				if _, dup := sizes[c]; dup {
					t.Errorf("n=%d w=%d: chunk id %d ran twice", n, w, c)
				}
				sizes[c] = hi - lo
				mu.Unlock()
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, v)
				}
			}
			minSz, maxSz := math.MaxInt, 0
			for _, s := range sizes {
				minSz, maxSz = min(minSz, s), max(maxSz, s)
			}
			if n > 0 && maxSz-minSz > 1 {
				t.Fatalf("n=%d w=%d: unbalanced chunks %v", n, w, sizes)
			}
		}
	}
}

// TestParallelForCoversExactlyOnce audits the parallelFor partition under
// pinned Workers across the same grid (the regression for the clamped-w /
// short-final-chunk arithmetic).
func TestParallelForCoversExactlyOnce(t *testing.T) {
	defer func(w int) { Workers = w }(Workers)
	for _, n := range []int{0, 1, 255, 256, 257, 1000} {
		for _, w := range []int{1, 2, 3, 7, 8} {
			Workers = w
			visits := make([]int32, n)
			var mu sync.Mutex
			parallelFor(n, func(lo, hi int) {
				mu.Lock()
				for i := lo; i < hi; i++ {
					visits[i]++
				}
				mu.Unlock()
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("n=%d Workers=%d: index %d visited %d times", n, w, i, v)
				}
			}
		}
	}
}

func TestParMulVecTMatchesSerial(t *testing.T) {
	r := rng.New(11)
	a := randomDense(r, 400, 37)
	x := make([]float64, 400)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	want := a.MulVecT(x, nil)

	defer func(w int) { Workers = w }(Workers)

	// Workers=1 takes the serial path: bit-exact.
	Workers = 1
	got := a.ParMulVecT(x, nil)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Workers=1 not bit-exact at %d: %v vs %v", i, got[i], want[i])
		}
	}

	// Workers>1 merges per-chunk partials: equal within reassociation noise,
	// and bit-identical run-to-run at a pinned worker count.
	for _, w := range []int{2, 3, 7} {
		Workers = w
		first := a.ParMulVecT(x, nil)
		for i := range want {
			if math.Abs(first[i]-want[i]) > 1e-12 {
				t.Fatalf("Workers=%d differs from serial at %d: %v vs %v", w, i, first[i], want[i])
			}
		}
		for rep := 0; rep < 5; rep++ {
			again := a.ParMulVecT(x, nil)
			for i := range first {
				if again[i] != first[i] {
					t.Fatalf("Workers=%d not deterministic at %d (rep %d)", w, i, rep)
				}
			}
		}
	}
}

func TestParATAMatchesSerialBitExact(t *testing.T) {
	r := rng.New(12)
	a := randomDense(r, 300, 80)
	want := ATA(a)

	defer func(w int) { Workers = w }(Workers)
	// Every G element is owned by one chunk and accumulated in the serial
	// order, so ParATA is bit-identical to ATA at ANY worker count.
	for _, w := range []int{1, 2, 3, 7, 8} {
		Workers = w
		got := ParATA(a)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("Workers=%d: ParATA not bit-exact at flat index %d", w, i)
			}
		}
	}
}

func TestParMulVecBitExact(t *testing.T) {
	r := rng.New(13)
	a := randomDense(r, 333, 50)
	x := make([]float64, 50)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	want := a.MulVec(x, nil)
	defer func(w int) { Workers = w }(Workers)
	for _, w := range []int{1, 2, 5} {
		Workers = w
		got := a.ParMulVec(x, nil)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Workers=%d: ParMulVec not bit-exact at %d", w, i)
			}
		}
	}
}

// TestPoolBudgetNeverExceeded hammers every parallel kernel from many
// concurrent callers and asserts the peak number of simultaneously executing
// pool workers never exceeds the global budget — the no-oversubscription
// guarantee when P ranks each call parallel kernels.
func TestPoolBudgetNeverExceeded(t *testing.T) {
	defer func(w int) { Workers = w }(Workers)
	Workers = 8
	r := rng.New(14)
	a := randomDense(r, 512, 64)
	x := make([]float64, 64)
	xt := make([]float64, 512)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	for i := range xt {
		xt[i] = r.NormFloat64()
	}

	ResetPoolPeak()
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 20; it++ {
				a.ParMulVec(x, nil)
				a.ParMulVecT(xt, nil)
				ParATA(a)
			}
		}()
	}
	wg.Wait()

	if peak, budget := PoolPeakWorkers(), PoolBudget(); peak > budget {
		t.Fatalf("pool peak %d exceeds budget %d", peak, budget)
	}
}

// TestParallelChunksNestedDoesNotDeadlock submits work whose body itself
// calls parallel kernels; the non-blocking pool must degrade to inline
// execution instead of deadlocking.
func TestParallelChunksNestedDoesNotDeadlock(t *testing.T) {
	defer func(w int) { Workers = w }(Workers)
	Workers = 4
	r := rng.New(15)
	a := randomDense(r, 300, 30)
	x := make([]float64, 30)
	want := a.MulVec(x, nil)
	ParallelChunks(16, 16, func(_, lo, hi int) {
		got := a.ParMulVec(x, nil)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("nested ParMulVec mismatch at %d", i)
				return
			}
		}
	})
}
