package mat

// This file holds the register-level kernel primitives behind the public
// level-1/2/3 operations. The machine model they target is a memory-
// bandwidth-bound core: a single scalar accumulator chains every
// floating-point add through one dependency, and a single row stream leaves
// load bandwidth on the table. The primitives therefore (a) split
// accumulation across independent registers so adds overlap, and (b)
// interleave several contiguous row streams against one shared vector so the
// core issues multiple concurrent cache-line fetches.
//
// Reassociating a sum changes only last-ulp rounding; element-wise updates
// (axpyK) are bit-identical to the scalar loop. All kernels assume the
// non-len-bearing slices are at least as long as the len-bearing one; callers
// validate shapes.

// dotK returns <x, y> with 8-wide unrolling over 4 independent accumulators.
// Iterates len(x) elements; len(y) must be >= len(x).
func dotK(x, y []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+8 <= len(x); i += 8 {
		xv := x[i : i+8 : i+8]
		yv := y[i : i+8 : i+8]
		s0 += xv[0]*yv[0] + xv[4]*yv[4]
		s1 += xv[1]*yv[1] + xv[5]*yv[5]
		s2 += xv[2]*yv[2] + xv[6]*yv[6]
		s3 += xv[3]*yv[3] + xv[7]*yv[7]
	}
	for ; i < len(x); i++ {
		s0 += x[i] * y[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// dot2K returns (<r0, x>, <r1, x>): two row-dots sharing every load of x,
// each with 2 independent accumulators. Two concurrent row streams beat the
// single-stream bandwidth ceiling, which is why MulVec pairs its rows.
func dot2K(r0, r1, x []float64) (float64, float64) {
	var a0, a1, b0, b1 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		xv := x[i : i+4 : i+4]
		u := r0[i : i+4 : i+4]
		v := r1[i : i+4 : i+4]
		a0 += u[0]*xv[0] + u[2]*xv[2]
		a1 += u[1]*xv[1] + u[3]*xv[3]
		b0 += v[0]*xv[0] + v[2]*xv[2]
		b1 += v[1]*xv[1] + v[3]*xv[3]
	}
	for ; i < len(x); i++ {
		a0 += r0[i] * x[i]
		b0 += r1[i] * x[i]
	}
	return a0 + a1, b0 + b1
}

// dot4K returns (<r0,x>, <r1,x>, <r2,x>, <r3,x>): four row-dots sharing
// every load of x, each with 2 independent accumulators — five concurrent
// streams per pass. Used for remainder rows below a full dot6K block and by
// the gathered-column Gram kernel.
func dot4K(r0, r1, r2, r3, x []float64) (float64, float64, float64, float64) {
	var a0, a1, b0, b1, c0, c1, d0, d1 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		xv := x[i : i+4 : i+4]
		u := r0[i : i+4 : i+4]
		v := r1[i : i+4 : i+4]
		w := r2[i : i+4 : i+4]
		z := r3[i : i+4 : i+4]
		a0 += u[0]*xv[0] + u[2]*xv[2]
		a1 += u[1]*xv[1] + u[3]*xv[3]
		b0 += v[0]*xv[0] + v[2]*xv[2]
		b1 += v[1]*xv[1] + v[3]*xv[3]
		c0 += w[0]*xv[0] + w[2]*xv[2]
		c1 += w[1]*xv[1] + w[3]*xv[3]
		d0 += z[0]*xv[0] + z[2]*xv[2]
		d1 += z[1]*xv[1] + z[3]*xv[3]
	}
	for ; i < len(x); i++ {
		a0 += r0[i] * x[i]
		b0 += r1[i] * x[i]
		c0 += r2[i] * x[i]
		d0 += r3[i] * x[i]
	}
	return a0 + a1, b0 + b1, c0 + c1, d0 + d1
}

// dot6K returns the six row-dots (<r0,x>, …, <r5,x>) sharing every load of
// x — seven concurrent streams per pass, each row reduced through a paired
// tree (one accumulator per row; the tree breaks the serial add chain). The
// widest profitable row blocking for MulVec on a bandwidth-bound core: six
// streams saturate the load ports where four leave bandwidth unused.
func dot6K(r0, r1, r2, r3, r4, r5, x []float64) (y0, y1, y2, y3, y4, y5 float64) {
	i := 0
	for ; i+4 <= len(x); i += 4 {
		xv := x[i : i+4 : i+4]
		u := r0[i : i+4 : i+4]
		v := r1[i : i+4 : i+4]
		w := r2[i : i+4 : i+4]
		z := r3[i : i+4 : i+4]
		s := r4[i : i+4 : i+4]
		t := r5[i : i+4 : i+4]
		y0 += (u[0]*xv[0] + u[1]*xv[1]) + (u[2]*xv[2] + u[3]*xv[3])
		y1 += (v[0]*xv[0] + v[1]*xv[1]) + (v[2]*xv[2] + v[3]*xv[3])
		y2 += (w[0]*xv[0] + w[1]*xv[1]) + (w[2]*xv[2] + w[3]*xv[3])
		y3 += (z[0]*xv[0] + z[1]*xv[1]) + (z[2]*xv[2] + z[3]*xv[3])
		y4 += (s[0]*xv[0] + s[1]*xv[1]) + (s[2]*xv[2] + s[3]*xv[3])
		y5 += (t[0]*xv[0] + t[1]*xv[1]) + (t[2]*xv[2] + t[3]*xv[3])
	}
	for ; i < len(x); i++ {
		y0 += r0[i] * x[i]
		y1 += r1[i] * x[i]
		y2 += r2[i] * x[i]
		y3 += r3[i] * x[i]
		y4 += r4[i] * x[i]
		y5 += r5[i] * x[i]
	}
	return
}

// axpyK computes y += a*x, 4-wide. Element updates are independent, so this
// is bit-identical to the scalar loop. Iterates len(x); len(y) >= len(x).
func axpyK(a float64, x, y []float64) {
	i := 0
	for ; i+4 <= len(x); i += 4 {
		xv := x[i : i+4 : i+4]
		yv := y[i : i+4 : i+4]
		yv[0] += a * xv[0]
		yv[1] += a * xv[1]
		yv[2] += a * xv[2]
		yv[3] += a * xv[3]
	}
	for ; i < len(x); i++ {
		y[i] += a * x[i]
	}
}

// axpy4K computes y += a0*r0 + a1*r1 + a2*r2 + a3*r3 in one pass, fusing four
// row streams per load of y. Iterates len(y); rows must be >= len(y).
func axpy4K(a0, a1, a2, a3 float64, r0, r1, r2, r3, y []float64) {
	n := len(y)
	i := 0
	for ; i+2 <= n; i += 2 {
		y[i] += (a0*r0[i] + a1*r1[i]) + (a2*r2[i] + a3*r3[i])
		y[i+1] += (a0*r0[i+1] + a1*r1[i+1]) + (a2*r2[i+1] + a3*r3[i+1])
	}
	if i < n {
		y[i] += (a0*r0[i] + a1*r1[i]) + (a2*r2[i] + a3*r3[i])
	}
}

// mulToTileJ is the dst/B column-tile width for MulTo: 512 float64 = 4 KiB
// per row stream, so the five streams of a 4-row-fused update panel stay
// L1-resident.
const mulToTileJ = 512

// mulToPanel accumulates dst[:, jLo:jHi] += A·B[:, jLo:jHi] with 4-way
// k-unrolling: each dst row is updated by four B rows per pass (axpy4K), so
// the inner loop runs five concurrent streams. dst must be pre-zeroed (or
// hold the partial sum being extended).
func mulToPanel(dst, a, b *Dense, jLo, jHi int) {
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)[jLo:jHi]
		k := 0
		for ; k+4 <= a.Cols; k += 4 {
			axpy4K(arow[k], arow[k+1], arow[k+2], arow[k+3],
				b.Row(k)[jLo:jHi], b.Row(k + 1)[jLo:jHi],
				b.Row(k + 2)[jLo:jHi], b.Row(k + 3)[jLo:jHi], drow)
		}
		for ; k < a.Cols; k++ {
			axpyK(arow[k], b.Row(k)[jLo:jHi], drow)
		}
	}
}

// ataPanel accumulates rows [pLo, pHi) of the upper triangle of G += AᵀA.
// Eight rows of A are blocked per pass, dividing the re-streaming traffic
// over G's rows by 8 and giving the core nine concurrent streams (8 data
// rows + the G row). Every G element is owned by exactly one output row and
// accumulated in a fixed order independent of the [pLo, pHi) split, so
// splitting the output rows across workers is deterministic at any split.
func ataPanel(a, g *Dense, pLo, pHi int) {
	rows := a.Rows
	i := 0
	for ; i+8 <= rows; i += 8 {
		r0, r1, r2, r3 := a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3)
		r4, r5, r6, r7 := a.Row(i+4), a.Row(i+5), a.Row(i+6), a.Row(i+7)
		for p := pLo; p < pHi; p++ {
			v0, v1, v2, v3 := r0[p], r1[p], r2[p], r3[p]
			v4, v5, v6, v7 := r4[p], r5[p], r6[p], r7[p]
			grow := g.Row(p)
			for q := p; q < len(grow); q++ {
				grow[q] += ((v0*r0[q] + v1*r1[q]) + (v2*r2[q] + v3*r3[q])) +
					((v4*r4[q] + v5*r5[q]) + (v6*r6[q] + v7*r7[q]))
			}
		}
	}
	for ; i < rows; i++ {
		row := a.Row(i)
		for p := pLo; p < pHi; p++ {
			vp := row[p]
			grow := g.Row(p)
			for q := p; q < len(grow); q++ {
				grow[q] += vp * row[q]
			}
		}
	}
}

// mirrorLower copies the computed upper triangle of a symmetric matrix into
// its lower triangle.
func mirrorLower(g *Dense) {
	for p := 0; p < g.Rows; p++ {
		for q := p + 1; q < g.Cols; q++ {
			g.Set(q, p, g.At(p, q))
		}
	}
}
