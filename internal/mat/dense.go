// Package mat implements the dense linear algebra kernels ExtDict is built
// on: matrices, matrix-vector and matrix-matrix products, Cholesky
// factorization, triangular solves, and the norms used by the projection
// error criterion.
//
// It plays the role the Eigen library plays in the paper's C++
// implementation, written from scratch on float64 slices using only the
// standard library. Hot kernels are cache-friendly (row-major, ikj loop
// orders) and the large ones can run across goroutines (see parallel.go).
package mat

import (
	"fmt"
	"math"
)

// Dense is a dense row-major matrix. Element (i, j) is stored at
// Data[i*Stride+j]. Most code uses Stride == Cols; views produced by slicing
// keep the parent's stride.
type Dense struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// NewDense returns a zeroed r×c matrix. It panics if r or c is negative.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic("mat: negative dimension")
	}
	return &Dense{Rows: r, Cols: c, Stride: c, Data: make([]float64, r*c)}
}

// NewDenseData wraps an existing backing slice as an r×c matrix. The slice
// must have exactly r*c elements; it is used directly, not copied.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Dense{Rows: r, Cols: c, Stride: c, Data: data}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Stride+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Stride+j] = v }

// Row returns row i as a slice that aliases the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Stride : i*m.Stride+m.Cols] }

// Col copies column j into dst (allocated when nil) and returns it.
func (m *Dense) Col(j int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.Rows)
	}
	if len(dst) != m.Rows {
		panic("mat: Col dst length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.Data[i*m.Stride+j]
	}
	return dst
}

// SetCol writes src into column j.
func (m *Dense) SetCol(j int, src []float64) {
	if len(src) != m.Rows {
		panic("mat: SetCol src length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Stride+j] = src[i]
	}
}

// Clone returns a deep copy with a compact stride.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i))
	}
	return out
}

// ColSlice returns an m.Rows×len(cols) matrix whose columns are the listed
// columns of m, in order. The result owns fresh storage.
func (m *Dense) ColSlice(cols []int) *Dense {
	out := NewDense(m.Rows, len(cols))
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		for k, j := range cols {
			dst[k] = src[j]
		}
	}
	return out
}

// RowSlice returns a len(rows)×m.Cols matrix whose rows are the listed rows
// of m, in order. The result owns fresh storage.
func (m *Dense) RowSlice(rows []int) *Dense {
	out := NewDense(len(rows), m.Cols)
	for k, i := range rows {
		copy(out.Row(k), m.Row(i))
	}
	return out
}

// ColRange returns a view of columns [j0, j1) sharing m's storage.
func (m *Dense) ColRange(j0, j1 int) *Dense {
	if j0 < 0 || j1 < j0 || j1 > m.Cols {
		panic("mat: ColRange out of bounds")
	}
	return &Dense{
		Rows:   m.Rows,
		Cols:   j1 - j0,
		Stride: m.Stride,
		Data:   m.Data[j0 : (m.Rows-1)*m.Stride+j1],
	}
}

// T returns a newly allocated transpose of m.
func (m *Dense) T() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Stride+i] = v
		}
	}
	return out
}

// Equal reports whether a and b have the same shape and all elements within
// tol of each other.
func Equal(a, b *Dense, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if math.Abs(ra[j]-rb[j]) > tol {
				return false
			}
		}
	}
	return true
}

// FrobNorm returns the Frobenius norm of m.
func (m *Dense) FrobNorm() float64 {
	// Scaled accumulation to avoid overflow on large entries.
	var scale, ssq float64 = 0, 1
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			if v == 0 {
				continue
			}
			a := math.Abs(v)
			if scale < a {
				r := scale / a
				ssq = 1 + ssq*r*r
				scale = a
			} else {
				r := a / scale
				ssq += r * r
			}
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormalizeColumns scales every column of m to unit Euclidean norm in place,
// leaving all-zero columns untouched. It returns the original norms.
// ExD (Algorithm 1) requires a column-normalized input matrix.
func (m *Dense) NormalizeColumns() []float64 {
	norms := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			norms[j] += v * v
		}
	}
	inv := make([]float64, m.Cols)
	for j, s := range norms {
		norms[j] = math.Sqrt(s)
		if norms[j] > 0 {
			inv[j] = 1 / norms[j]
		}
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= inv[j]
		}
	}
	return norms
}

// Scale multiplies every element of m by s in place.
func (m *Dense) Scale(s float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= s
		}
	}
}

// Add accumulates b into m element-wise (m += b). Shapes must match.
func (m *Dense) Add(b *Dense) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("mat: Add shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		rm, rb := m.Row(i), b.Row(i)
		for j := range rm {
			rm[j] += rb[j]
		}
	}
}

// Sub subtracts b from m element-wise (m -= b). Shapes must match.
func (m *Dense) Sub(b *Dense) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("mat: Sub shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		rm, rb := m.Row(i), b.Row(i)
		for j := range rm {
			rm[j] -= rb[j]
		}
	}
}
