package mat

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the shared bounded worker pool behind every parallel
// kernel. The simulated cluster runs P rank goroutines concurrently, and each
// rank may call a parallel kernel; spawning goroutines per call would explode
// to P×Workers runnable goroutines. Instead all kernels share one
// process-wide pool of poolBudget persistent workers:
//
//   - The budget is GOMAXPROCS at init: pool workers can never oversubscribe
//     the cores beyond what the runtime schedules anyway, no matter how many
//     ranks call kernels at once.
//   - Submission is non-blocking (trySubmit): if every worker is busy the
//     caller runs the chunk inline. A kernel invoked from inside a pool
//     worker (nested parallelism) therefore degrades to serial instead of
//     deadlocking — there is no wait-for-a-worker anywhere.
//   - Workers are started once, lazily, on first parallel call; an idle
//     program pays nothing.

// poolBudget is the global concurrency budget: the number of persistent pool
// workers, fixed at GOMAXPROCS when the pool starts.
var poolBudget = runtime.GOMAXPROCS(0)

// poolJob is one chunk of kernel work handed to a worker.
type poolJob struct {
	fn func()
	wg *sync.WaitGroup
}

var (
	poolOnce     = new(sync.Once)
	poolCh       chan poolJob
	poolWorkers  sync.WaitGroup
	poolInFlight atomic.Int64
	poolPeak     atomic.Int64
)

func poolStart() {
	poolCh = make(chan poolJob)
	poolWorkers.Add(poolBudget)
	for i := 0; i < poolBudget; i++ {
		go poolWorker()
	}
}

func poolWorker() {
	defer poolWorkers.Done()
	for job := range poolCh {
		n := poolInFlight.Add(1)
		for {
			p := poolPeak.Load()
			if n <= p || poolPeak.CompareAndSwap(p, n) {
				break
			}
		}
		job.fn()
		poolInFlight.Add(-1)
		job.wg.Done()
	}
}

// trySubmit offers fn to an idle pool worker. It returns false — without
// blocking — when every worker is busy; the caller must then run fn (and
// call wg.Done) itself. On true, the pool calls wg.Done when fn returns.
func trySubmit(fn func(), wg *sync.WaitGroup) bool {
	poolOnce.Do(poolStart)
	select {
	case poolCh <- poolJob{fn: fn, wg: wg}:
		return true
	default:
		return false
	}
}

// PoolBudget returns the shared pool's worker count (the global concurrency
// budget for parallel kernels).
func PoolBudget() int { return poolBudget }

// PoolPeakWorkers returns the high-water mark of pool workers that were
// executing kernel chunks at the same instant since the last reset. It can
// never exceed PoolBudget — the assertion the budget tests rely on.
func PoolPeakWorkers() int { return int(poolPeak.Load()) }

// ResetPoolPeak clears the high-water mark. Test instrumentation.
func ResetPoolPeak() { poolPeak.Store(0) }

// drainPool retires every worker and rearms the lazy start, so tests can
// count goroutines hermetically and prove the pool leaks none. It must be
// called only while no kernel is running — trySubmit on a draining pool
// would send on a closed channel. Test instrumentation; production code
// never stops the pool.
func drainPool() {
	if poolCh == nil {
		return // never started
	}
	close(poolCh)
	poolWorkers.Wait()
	poolCh = nil
	poolOnce = new(sync.Once)
	poolInFlight.Store(0)
	poolPeak.Store(0)
}
