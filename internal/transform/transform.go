// Package transform implements the data-projection baselines the paper
// compares ExD against (§III, §VIII-B3): Random Column Subset Selection
// (RCSS), oASIS adaptive column sampling, and RankMap's minimal sparsifying
// basis. All expose one Method interface so the evaluation harness (and any
// user of the public API) can swap projections inside the ExtDict framework,
// mirroring the paper's claim that "the above dimensionality reduction
// methods can replace ExD within our framework".
//
// The three baselines differ from ExD along two axes:
//
//   - Basis selection: RCSS/RankMap pick random columns until the error
//     criterion is met (the smallest such basis); oASIS greedily picks the
//     column with the largest residual energy, reaching the criterion with
//     fewer columns.
//   - Coefficients: RCSS and oASIS form the dense C = D⁺A; RankMap codes C
//     sparsely with OMP but is pinned to the minimal basis. Only ExD
//     exposes dictionary size as a platform-tunable knob.
package transform

import (
	"fmt"
	"math"

	"extdict/internal/mat"
	"extdict/internal/rng"
	"extdict/internal/sparse"
)

// Result is a fitted projection A ≈ D·C.
type Result struct {
	// Name identifies the producing method.
	Name string
	// D is the M×L basis (dictionary).
	D *mat.Dense
	// C is the L×N coefficient matrix. Methods that produce dense
	// coefficients still return CSC storage (with every entry present)
	// and set DenseC so memory accounting can charge L·N words instead of
	// 2·nnz.
	C *sparse.CSC
	// DenseC records that C is structurally dense.
	DenseC bool
}

// L returns the basis size of the fit.
func (r *Result) L() int { return r.D.Cols }

// NNZ returns the number of stored coefficients.
func (r *Result) NNZ() int { return r.C.NNZ() }

// MemoryWords returns the words needed to store the projection, matching
// Table III's accounting: D always costs M·L; C costs L·N for dense storage
// and 2·nnz + N + 1 for sparse storage (value + row index per entry, plus
// column pointers).
func (r *Result) MemoryWords() int {
	d := r.D.Rows * r.D.Cols
	if r.DenseC {
		return d + r.C.Rows*r.C.Cols
	}
	return d + 2*r.C.NNZ() + r.C.Cols + 1
}

// RelError returns ‖A - D·C‖_F/‖A‖_F against the given data.
func (r *Result) RelError(a *mat.Dense) float64 {
	if a.Rows != r.D.Rows || a.Cols != r.C.Cols {
		panic("transform: RelError shape mismatch")
	}
	var num, den float64
	rec := make([]float64, a.Rows)
	col := make([]float64, a.Rows)
	for j := 0; j < a.Cols; j++ {
		mat.Zero(rec)
		for p := r.C.ColPtr[j]; p < r.C.ColPtr[j+1]; p++ {
			atom, v := r.C.RowIdx[p], r.C.Val[p]
			for i := range rec {
				rec[i] += v * r.D.At(i, atom)
			}
		}
		a.Col(j, col)
		for i := range col {
			d := col[i] - rec[i]
			num += d * d
			den += col[i] * col[i]
		}
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}

// Method is a data projection algorithm.
type Method interface {
	// Name returns the method's display name.
	Name() string
	// Fit projects the column-normalized matrix a within relative error
	// eps, drawing any randomness from r.
	Fit(a *mat.Dense, eps float64, r *rng.RNG) (*Result, error)
}

// selector grows a column basis until the projection residual satisfies
// ‖A - proj(A)‖_F ≤ eps·‖A‖_F. pickNext chooses the next candidate column
// given the residual energies; it returns -1 to stop early.
//
// It maintains an orthonormal basis Q of the selected columns and the
// residual energy of every column, so each selection step costs O(M·N):
// linear in N, as both RCSS and oASIS require for scalability.
func selectColumns(a *mat.Dense, eps float64, pickNext func(res2 []float64, step int) int) []int {
	m, n := a.Rows, a.Cols
	res2 := make([]float64, n)
	var total float64
	col := make([]float64, m)
	for j := 0; j < n; j++ {
		a.Col(j, col)
		res2[j] = mat.Dot(col, col)
		total += res2[j]
	}
	target := eps * eps * total

	var q []([]float64) // orthonormal basis vectors
	var picked []int
	remaining := total
	maxL := min(m+16, n) // beyond ~M columns the residual is numerically zero
	proj := make([]float64, m)
	for remaining > target && len(picked) < maxL {
		k := pickNext(res2, len(picked))
		if k < 0 {
			break
		}
		// Orthogonalize column k against the current basis (two passes of
		// modified Gram-Schmidt for stability).
		a.Col(k, proj)
		for pass := 0; pass < 2; pass++ {
			for _, qv := range q {
				d := mat.Dot(qv, proj)
				mat.Axpy(-d, qv, proj)
			}
		}
		nrm := mat.Norm2(proj)
		if nrm < 1e-10 {
			res2[k] = 0 // numerically in span: never pick again
			continue
		}
		mat.ScaleVec(1/nrm, proj)
		qNew := mat.CopyVec(proj)
		q = append(q, qNew)
		picked = append(picked, k)

		// Residual energy update: res2[j] -= (qNew·a_j)².
		dots := a.MulVecT(qNew, nil)
		remaining = 0
		for j := 0; j < n; j++ {
			res2[j] -= dots[j] * dots[j]
			if res2[j] < 0 {
				res2[j] = 0
			}
			remaining += res2[j]
		}
	}
	return picked
}

// leastSquaresC computes the dense coefficient matrix C = D⁺·A (the
// projection used by RCSS and oASIS), returned in CSC storage with every
// entry present.
func leastSquaresC(d *mat.Dense, a *mat.Dense) (*sparse.CSC, error) {
	l := d.Cols
	g := mat.ATA(d)
	// Tiny ridge keeps the normal equations factorizable when atoms are
	// nearly dependent; the perturbation is far below any eps in use.
	for i := 0; i < l; i++ {
		g.Set(i, i, g.At(i, i)+1e-12)
	}
	ch := mat.NewCholesky(l)
	if err := ch.Factorize(g); err != nil {
		return nil, fmt.Errorf("transform: basis Gram matrix not factorizable: %w", err)
	}
	b := sparse.NewBuilder(l)
	col := make([]float64, d.Rows)
	idx := make([]int, l)
	for i := range idx {
		idx[i] = i
	}
	for j := 0; j < a.Cols; j++ {
		a.Col(j, col)
		c := d.MulVecT(col, nil)
		ch.SolveInPlace(c)
		b.AppendColumn(idx, c)
	}
	return b.Build(), nil
}
