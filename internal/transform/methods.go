package transform

import (
	"fmt"

	"extdict/internal/mat"
	"extdict/internal/omp"
	"extdict/internal/rng"
)

// RCSS is Random Column Subset Selection [17]: columns are added to the
// basis in a uniformly random order until the projection error criterion is
// met, then C = D⁺·A is a dense least-squares projection.
type RCSS struct{}

// Name implements Method.
func (RCSS) Name() string { return "RCSS" }

// Fit implements Method.
func (RCSS) Fit(a *mat.Dense, eps float64, r *rng.RNG) (*Result, error) {
	order := r.Perm(a.Cols)
	next := 0
	picked := selectColumns(a, eps, func(res2 []float64, _ int) int {
		for next < len(order) {
			k := order[next]
			next++
			if res2[k] > 0 {
				return k
			}
		}
		return -1
	})
	if len(picked) == 0 {
		return nil, fmt.Errorf("transform: RCSS selected no columns")
	}
	d := a.ColSlice(picked)
	c, err := leastSquaresC(d, a)
	if err != nil {
		return nil, err
	}
	return &Result{Name: "RCSS", D: d, C: c, DenseC: true}, nil
}

// OASIS is the adaptive column-sampling baseline [22]: each step selects the
// column with the largest residual energy after projection onto the current
// basis — the "most informative" column — reaching a given error with fewer
// columns than random selection while staying linear in N per step.
type OASIS struct{}

// Name implements Method.
func (OASIS) Name() string { return "oASIS" }

// Fit implements Method.
func (OASIS) Fit(a *mat.Dense, eps float64, _ *rng.RNG) (*Result, error) {
	picked := selectColumns(a, eps, func(res2 []float64, _ int) int {
		best, bestV := -1, 0.0
		for j, v := range res2 {
			if v > bestV {
				best, bestV = j, v
			}
		}
		return best
	})
	if len(picked) == 0 {
		return nil, fmt.Errorf("transform: oASIS selected no columns")
	}
	d := a.ColSlice(picked)
	c, err := leastSquaresC(d, a)
	if err != nil {
		return nil, err
	}
	return &Result{Name: "oASIS", D: d, C: c, DenseC: true}, nil
}

// RankMap is the sparsifying subset-selection method of the authors' prior
// work [28][39]: the basis is the *smallest* random column subset meeting
// the error criterion (no platform awareness, no over-completeness), and the
// coefficients are coded sparsely with OMP. It is the closest relative of
// ExD; the difference is exactly the tunable dictionary size.
type RankMap struct {
	// Workers parallelizes the OMP coding pass; 0 means 1.
	Workers int
}

// Name implements Method.
func (RankMap) Name() string { return "RankMap" }

// Fit implements Method.
func (rm RankMap) Fit(a *mat.Dense, eps float64, r *rng.RNG) (*Result, error) {
	order := r.Perm(a.Cols)
	next := 0
	picked := selectColumns(a, eps, func(res2 []float64, _ int) int {
		for next < len(order) {
			k := order[next]
			next++
			if res2[k] > 0 {
				return k
			}
		}
		return -1
	})
	if len(picked) == 0 {
		return nil, fmt.Errorf("transform: RankMap selected no columns")
	}
	d := a.ColSlice(picked)
	workers := rm.Workers
	if workers < 1 {
		workers = 1
	}
	c, _ := omp.NewBatchCoder(d).EncodeColumns(a, eps, 0, workers)
	return &Result{Name: "RankMap", D: d, C: c}, nil
}
