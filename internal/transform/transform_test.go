package transform

import (
	"testing"

	"extdict/internal/dataset"
	"extdict/internal/mat"
	"extdict/internal/rng"
)

func unionData(t testing.TB, m, n int, ks []int, seed uint64) *mat.Dense {
	t.Helper()
	u, err := dataset.GenerateUnion(dataset.UnionParams{M: m, N: n, Ks: ks}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return u.A
}

func methods() []Method {
	return []Method{RCSS{}, OASIS{}, RankMap{Workers: 2}}
}

func TestMethodsMeetErrorCriterion(t *testing.T) {
	a := unionData(t, 32, 200, []int{4, 5}, 1)
	for _, m := range methods() {
		for _, eps := range []float64{0.2, 0.1, 0.05} {
			res, err := m.Fit(a, eps, rng.New(2))
			if err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
			if got := res.RelError(a); got > eps+1e-6 {
				t.Errorf("%s eps=%v: achieved %v", m.Name(), eps, got)
			}
			if err := res.C.Check(); err != nil {
				t.Errorf("%s: malformed C: %v", m.Name(), err)
			}
			if res.C.Rows != res.L() || res.C.Cols != a.Cols {
				t.Errorf("%s: C shape %dx%d for L=%d", m.Name(), res.C.Rows, res.C.Cols, res.L())
			}
		}
	}
}

func TestOASISNeedsNoMoreColumnsThanRCSS(t *testing.T) {
	// Adaptive selection is the point of oASIS: it should reach the error
	// criterion with at most as many columns as random selection (allowing
	// small sampling noise).
	a := unionData(t, 40, 300, []int{5, 6, 7}, 3)
	const eps = 0.05
	rc, err := RCSS{}.Fit(a, eps, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	oa, err := OASIS{}.Fit(a, eps, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if oa.L() > rc.L()+2 {
		t.Fatalf("oASIS used %d columns, RCSS %d", oa.L(), rc.L())
	}
}

func TestRankMapSparserThanRCSS(t *testing.T) {
	// RankMap's OMP coding must store far fewer coefficients than the
	// dense least-squares C of RCSS at the same error.
	a := unionData(t, 32, 250, []int{3, 4}, 5)
	const eps = 0.1
	rc, err := RCSS{}.Fit(a, eps, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	rm, err := RankMap{}.Fit(a, eps, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if !rc.DenseC || rm.DenseC {
		t.Fatal("DenseC flags wrong")
	}
	if rm.NNZ() >= rc.NNZ() {
		t.Fatalf("RankMap nnz %d not below RCSS %d", rm.NNZ(), rc.NNZ())
	}
}

func TestMemoryWordsAccounting(t *testing.T) {
	a := unionData(t, 24, 100, []int{3}, 7)
	rc, err := RCSS{}.Fit(a, 0.1, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	wantDense := 24*rc.L() + rc.L()*100
	if rc.MemoryWords() != wantDense {
		t.Fatalf("dense memory %d, want %d", rc.MemoryWords(), wantDense)
	}
	rm, err := RankMap{}.Fit(a, 0.1, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	wantSparse := 24*rm.L() + 2*rm.NNZ() + 100 + 1
	if rm.MemoryWords() != wantSparse {
		t.Fatalf("sparse memory %d, want %d", rm.MemoryWords(), wantSparse)
	}
}

func TestSelectColumnsStopsOnLowRankData(t *testing.T) {
	// Exact rank-3 data: selection must stop after ~3 columns for any
	// reasonable eps, even with eps=0 plus numerical slack.
	a := unionData(t, 20, 80, []int{3}, 9)
	picked := selectColumns(a, 1e-6, func(res2 []float64, _ int) int {
		best, bestV := -1, 0.0
		for j, v := range res2 {
			if v > bestV {
				best, bestV = j, v
			}
		}
		return best
	})
	if len(picked) > 5 {
		t.Fatalf("selected %d columns from rank-3 data", len(picked))
	}
}

func TestMethodsDeterministicPerSeed(t *testing.T) {
	a := unionData(t, 20, 120, []int{3, 3}, 10)
	for _, m := range methods() {
		r1, err := m.Fit(a, 0.1, rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		r2, err := m.Fit(a, 0.1, rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		if r1.L() != r2.L() || r1.NNZ() != r2.NNZ() {
			t.Fatalf("%s not deterministic", m.Name())
		}
	}
}

func TestNames(t *testing.T) {
	want := map[string]bool{"RCSS": true, "oASIS": true, "RankMap": true}
	for _, m := range methods() {
		if !want[m.Name()] {
			t.Fatalf("unexpected name %q", m.Name())
		}
	}
}
