package extdict

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	data := demoData(t, 24, 150, 30)
	plat := NewPlatform(2, 2)
	model, err := Fit(data, plat, Options{Epsilon: 0.08, L: 70, Workers: 2, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "model.exd")
	if err := model.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(path, plat)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.L() != model.L() || loaded.NNZ() != model.NNZ() || loaded.Alpha() != model.Alpha() {
		t.Fatal("model statistics changed through save/load")
	}
	if loaded.RelError(data) != model.RelError(data) {
		t.Fatal("reconstruction changed through save/load")
	}

	// The loaded model must produce an identical distributed operator.
	op1, err := model.GramOperator()
	if err != nil {
		t.Fatal(err)
	}
	op2, err := loaded.GramOperator()
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 150)
	x[3], x[77] = 1, -2
	y1 := make([]float64, 150)
	y2 := make([]float64, 150)
	op1.Apply(x, y1)
	op2.Apply(x, y2)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatal("operators diverge after round trip")
		}
	}
}

func TestReadModelValidation(t *testing.T) {
	if _, err := ReadModel(bytes.NewReader([]byte("junk")), NewPlatform(1, 1)); err == nil {
		t.Fatal("garbage accepted")
	}
	data := demoData(t, 12, 40, 32)
	model, err := Fit(data, NewPlatform(1, 1), Options{Epsilon: 0.1, L: 20, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := model.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadModel(&buf, Platform{}); err == nil {
		t.Fatal("invalid platform accepted")
	}
}

func TestLoadModelMissingFile(t *testing.T) {
	if _, err := LoadModel("/nonexistent/model.exd", NewPlatform(1, 1)); err == nil {
		t.Fatal("missing file accepted")
	}
}
