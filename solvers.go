package extdict

import (
	"extdict/internal/mat"
	"extdict/internal/solver"
)

// LassoOptions configures SolveLasso; see solver.LassoOpts for field
// documentation.
type LassoOptions = solver.LassoOpts

// LassoResult is the outcome of SolveLasso.
type LassoResult = solver.LassoResult

// SolveLasso minimizes ‖A·x - y‖² + λ‖x‖₁ by distributed proximal gradient
// descent with Adagrad steps. op supplies the Gram product (use
// Model.GramOperator for the transformed iteration, DenseGramOperator for
// the raw baseline, or SGDOperator for stochastic updates); data is the
// original matrix A, needed once to form Aᵀy.
func SolveLasso(op Operator, data *Matrix, y []float64, opts LassoOptions) LassoResult {
	aty := data.MulVecT(y, nil)
	return solver.Lasso(op, aty, mat.Dot(y, y), opts)
}

// ElasticNetOptions configures SolveElasticNet; see solver.ElasticNetOpts.
type ElasticNetOptions = solver.ElasticNetOpts

// ElasticNetResult is the outcome of SolveElasticNet.
type ElasticNetResult = solver.ElasticNetResult

// SolveElasticNet minimizes ‖A·x - y‖² + λ₁‖x‖₁ + λ₂‖x‖² with the same
// distributed iteration as SolveLasso. λ₂=0 is LASSO; λ₁=0 is Ridge.
func SolveElasticNet(op Operator, data *Matrix, y []float64, opts ElasticNetOptions) ElasticNetResult {
	aty := data.MulVecT(y, nil)
	return solver.ElasticNet(op, aty, mat.Dot(y, y), opts)
}

// PCAOptions configures SolvePCA; see solver.PowerOpts.
type PCAOptions = solver.PowerOpts

// PCAResult is the outcome of SolvePCA.
type PCAResult = solver.PowerResult

// SolvePCA extracts the leading eigenpairs of the Gram matrix AᵀA by the
// distributed Power method with deflation.
func SolvePCA(op Operator, opts PCAOptions) PCAResult {
	return solver.PowerMethod(op, opts)
}

// SparsePCAOptions configures SolveSparsePCA; see solver.SparsePCAOpts.
type SparsePCAOptions = solver.SparsePCAOpts

// SparsePCAResult is the outcome of SolveSparsePCA.
type SparsePCAResult = solver.SparsePCAResult

// SolveSparsePCA extracts sparse principal components (loadings with a
// bounded number of nonzeros) with the distributed truncated power method.
func SolveSparsePCA(op Operator, opts SparsePCAOptions) SparsePCAResult {
	return solver.SparsePCA(op, opts)
}

// SVMOptions configures SolveSVM; see solver.SVMOpts.
type SVMOptions = solver.SVMOpts

// SVMResult is the outcome of SolveSVM.
type SVMResult = solver.SVMResult

// SolveSVM trains a soft-margin linear SVM in the dual on the distributed
// Gram operator: labels are ±1 per data column. Use SVMWeights to recover
// the primal weight vector for classifying new samples.
func SolveSVM(op Operator, labels []float64, opts SVMOptions) SVMResult {
	return solver.SVM(op, labels, opts)
}

// SVMWeights recovers the primal weight vector w = A·(α∘y) from the data
// matrix and a trained SVM; classify a new sample x with sign(wᵀx).
func SVMWeights(data *Matrix, labels []float64, res SVMResult) []float64 {
	return solver.SVMWeights(data, labels, res)
}

// SpectralOptions configures SolveSpectralClustering; see
// solver.SpectralOpts.
type SpectralOptions = solver.SpectralOpts

// SpectralResult is the outcome of SolveSpectralClustering.
type SpectralResult = solver.SpectralResult

// SolveSpectralClustering partitions the data columns into direction
// clusters by k-means on the Gram matrix's leading eigenvector embedding
// (the Power-method spectral-partitioning application).
func SolveSpectralClustering(op Operator, opts SpectralOptions) SpectralResult {
	return solver.SpectralCluster(op, opts)
}
