package extdict

import (
	"fmt"
	"io"
	"os"

	"extdict/internal/exd"
)

// WriteTo serializes the fitted model's transform (dictionary, sparse
// coefficients, fit parameters) in a compact binary format. Preprocessing
// is ExtDict's expensive one-time step; serializing it lets a deployment
// fit once and ship the transform to every compute job.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	return m.transform.WriteTo(w)
}

// Save writes the model's transform to a file.
func (m *Model) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, werr := m.WriteTo(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// ReadModel deserializes a transform written by WriteTo/Save and binds it
// to the given execution platform.
func ReadModel(r io.Reader, platform Platform) (*Model, error) {
	if err := platform.Topology.Validate(); err != nil {
		return nil, err
	}
	tr, err := exd.ReadTransform(r)
	if err != nil {
		return nil, err
	}
	return &Model{transform: tr, platform: platform}, nil
}

// LoadModel reads a model file saved by Save.
func LoadModel(path string, platform Platform) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:ignore errcheck read-only open; Close cannot lose buffered writes
	defer f.Close()
	m, err := ReadModel(f, platform)
	if err != nil {
		return nil, fmt.Errorf("extdict: loading %s: %w", path, err)
	}
	return m, nil
}
