// Package extdict is a data- and platform-aware framework for iterative
// analysis and learning on massive, densely correlated datasets — a Go
// reproduction of "ExtDict: Extensible Dictionaries for Data- and
// Platform-Aware Large-Scale Learning" (Mirhoseini et al., IPDPS 2017).
//
// Iterative algorithms such as LASSO regression and the Power method spend
// their time on Gram-matrix products y = AᵀA·x. ExtDict preprocesses the
// data once into an Extensible Dictionary factorization A ≈ D·C — D a
// dictionary of sampled data columns, C sparse — and then iterates on
// (DC)ᵀDC·x instead, which is dramatically cheaper in flops, communication,
// and memory. The dictionary size L is a tunable knob: ExtDict picks the L
// that minimizes a cost model of the *target platform* (cores, nodes, and
// their word-per-flop ratios), which is what distinguishes it from purely
// data-aware projections.
//
// # Quick start
//
//	data := extdict.NewMatrix(rows, cols)      // fill, column-normalize
//	data.NormalizeColumns()
//	platform := extdict.NewPlatform(8, 8)      // 8 nodes × 8 cores
//	model, err := extdict.Fit(data, platform, extdict.Options{Epsilon: 0.1})
//	op, err := model.GramOperator()            // distributed (DC)ᵀDC·x
//	pca := extdict.SolvePCA(op, extdict.PCAOptions{Components: 10})
//
// The distributed platform is simulated in-process: ranks are goroutines,
// collectives move real data, and every flop and word is counted and priced
// by the platform cost model, so runtime/energy/memory trends match a real
// message-passing deployment (see DESIGN.md for the substitution argument).
package extdict

import (
	"fmt"

	"extdict/internal/cluster"
	"extdict/internal/dist"
	"extdict/internal/exd"
	"extdict/internal/mat"
	"extdict/internal/perf"
	"extdict/internal/tune"
)

// Matrix is a dense row-major matrix of float64, the input data type of the
// framework. Data is stored column-per-signal: an M×N matrix holds N signals
// of dimension M.
type Matrix = mat.Dense

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix { return mat.NewDense(rows, cols) }

// NewMatrixData wraps data (length rows*cols, row-major) as a matrix without
// copying.
func NewMatrixData(rows, cols int, data []float64) *Matrix {
	return mat.NewDenseData(rows, cols, data)
}

// Platform describes the execution target: a nodes×cores topology plus the
// cost model (word-per-flop ratios, latencies) that prices its operations.
type Platform = cluster.Platform

// NewPlatform returns a platform with the default commodity-cluster cost
// model. Adjust the Cost fields to calibrate to other hardware.
func NewPlatform(nodes, coresPerNode int) Platform {
	return cluster.NewPlatform(nodes, coresPerNode)
}

// PaperPlatforms returns the four configurations the paper's evaluation
// sweeps: 1×1, 1×4, 2×8, and 8×8 nodes×cores.
func PaperPlatforms() []Platform { return cluster.PaperPlatforms() }

// Objective selects which cost the auto-tuner minimizes.
type Objective = perf.Objective

// Tuning objectives.
const (
	// Runtime minimizes the Eq. 2 per-iteration time prediction.
	Runtime = perf.Runtime
	// Energy minimizes the Eq. 3 energy prediction.
	Energy = perf.Energy
	// Memory minimizes the Eq. 4 per-rank footprint.
	Memory = perf.Memory
)

// RunStats reports the cost of distributed work: exact flop and word counts
// plus modeled time/energy under the platform cost model and measured
// wall-clock.
type RunStats = cluster.Stats

// Options configures Fit.
type Options struct {
	// Epsilon is the relative transformation error tolerance ε:
	// ‖A - D·C‖_F ≤ ε‖A‖_F. Required, in (0, 1).
	Epsilon float64
	// L fixes the dictionary size; 0 (the default) auto-tunes it against
	// the platform cost model.
	L int
	// Objective selects the auto-tuning target (default Runtime).
	Objective Objective
	// MaxAtoms caps the per-column sparsity of C; 0 = min(M, L).
	MaxAtoms int
	// Workers sets preprocessing parallelism; 0 = 1.
	Workers int
	// Seed makes preprocessing deterministic.
	Seed uint64
}

// Model is a fitted ExtDict model: the ExD transform bound to the platform
// it was tuned for.
type Model struct {
	transform *exd.Transform
	platform  Platform
	tuning    *tune.Result
}

// Fit preprocesses the data: when opts.L is zero it tunes the dictionary
// size for the platform (measuring the density function α(L) on data
// subsets, §VII), then runs the ExD projection (Algorithm 1). The data must
// be column-normalized; NormalizeColumns does that in place.
func Fit(data *Matrix, platform Platform, opts Options) (*Model, error) {
	if err := platform.Topology.Validate(); err != nil {
		return nil, err
	}
	if opts.Epsilon <= 0 || opts.Epsilon >= 1 {
		return nil, fmt.Errorf("extdict: Epsilon %v outside (0, 1)", opts.Epsilon)
	}
	m := &Model{platform: platform}
	if opts.L > 0 {
		tr, err := exd.Fit(data, exd.Params{
			L: opts.L, Epsilon: opts.Epsilon, MaxAtoms: opts.MaxAtoms,
			Workers: opts.Workers, Seed: opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		m.transform = tr
		return m, nil
	}
	tr, res, err := tune.TuneAndFit(data, platform, tune.Config{
		Epsilon: opts.Epsilon, Objective: opts.Objective,
		Workers: opts.Workers, Seed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	m.transform = tr
	m.tuning = &res
	return m, nil
}

// L returns the dictionary size of the fitted model.
func (m *Model) L() int { return m.transform.L() }

// N returns the number of coded data columns.
func (m *Model) N() int { return m.transform.N() }

// Alpha returns the density measure nnz(C)/N — average nonzeros per coded
// column.
func (m *Model) Alpha() float64 { return m.transform.Alpha() }

// NNZ returns the stored nonzeros of the coefficient matrix.
func (m *Model) NNZ() int { return m.transform.C.NNZ() }

// Platform returns the platform the model was fitted for.
func (m *Model) Platform() Platform { return m.platform }

// RelError measures the achieved transformation error against data (which
// must be the matrix the model was fitted on, or compatible new data).
func (m *Model) RelError(data *Matrix) float64 { return m.transform.RelError(data) }

// MemoryWords returns the storage footprint of D and C in float64 words.
func (m *Model) MemoryWords() int { return m.transform.MemoryWords() }

// Dictionary returns the fitted M×L dictionary. The returned matrix is
// shared with the model; treat it as read-only.
func (m *Model) Dictionary() *Matrix { return m.transform.D }

// PredictIteration returns the platform cost model's estimate for one
// distributed Gram iteration with this model.
func (m *Model) PredictIteration() perf.Estimate {
	return m.PredictOn(m.platform)
}

// PredictOn estimates one distributed Gram iteration of this model on an
// arbitrary platform — useful for asking "what would this transform cost
// elsewhere?" without refitting. Note that the model's dictionary size was
// tuned for its own platform; a different platform may have a different
// optimum (that is the paper's point), so compare against a fresh Fit when
// the answer matters.
func (m *Model) PredictOn(platform Platform) perf.Estimate {
	return perf.PredictTransformed(m.transform.D.Rows, m.N(), m.L(), m.NNZ(), platform)
}

// TuningReport returns the tuner's candidate table, or nil when Fit was
// called with a fixed L.
func (m *Model) TuningReport() *tune.Result { return m.tuning }

// ExtendInfo reports what an evolving-data update did.
type ExtendInfo = exd.ExtendResult

// Extend appends new data columns to the model (§V-E). If the existing
// dictionary codes them within tolerance only C grows; otherwise new atoms
// are appended with the zero-padding layout. Column-normalize aNew first.
func (m *Model) Extend(aNew *Matrix) (ExtendInfo, error) {
	return m.transform.Extend(aNew, 0)
}

// Operator is one distributed Gram-matrix product y = G·x; implementations
// carry their data partitioning and return per-iteration RunStats.
type Operator = dist.Operator

// GramOperator builds the distributed Algorithm 2 operator (DC)ᵀDC·x for
// this model on its platform.
func (m *Model) GramOperator() (Operator, error) {
	comm := cluster.NewComm(m.platform)
	return dist.NewExDGram(comm, m.transform.D, m.transform.C)
}

// DenseGramOperator builds the untransformed baseline operator AᵀA·x with A
// column-partitioned across the platform's ranks.
func DenseGramOperator(data *Matrix, platform Platform) Operator {
	return dist.NewDenseGram(cluster.NewComm(platform), data)
}

// SGDOperator builds the stochastic baseline: each application draws a fresh
// batch of rows and computes the unbiased estimate (M/B)·A_bᵀA_b·x.
func SGDOperator(data *Matrix, platform Platform, batch int, seed uint64) Operator {
	return dist.NewBatchGram(cluster.NewComm(platform), data, batch, seed)
}
