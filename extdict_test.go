package extdict

import (
	"math"
	"testing"

	"extdict/internal/dataset"
	"extdict/internal/rng"
)

func demoData(t testing.TB, m, n int, seed uint64) *Matrix {
	t.Helper()
	u, err := dataset.GenerateUnion(dataset.UnionParams{M: m, N: n, Ks: []int{4, 5}}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return u.A
}

func TestFitFixedL(t *testing.T) {
	data := demoData(t, 32, 200, 1)
	plat := NewPlatform(1, 4)
	model, err := Fit(data, plat, Options{Epsilon: 0.1, L: 80, Workers: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if model.L() != 80 || model.N() != 200 {
		t.Fatalf("L=%d N=%d", model.L(), model.N())
	}
	if model.RelError(data) > 0.1+1e-9 {
		t.Fatal("tolerance violated")
	}
	if model.TuningReport() != nil {
		t.Fatal("fixed-L fit should not carry a tuning report")
	}
	if model.Alpha() <= 0 || model.NNZ() <= 0 || model.MemoryWords() <= 0 {
		t.Fatal("degenerate model statistics")
	}
	if model.Dictionary().Cols != 80 {
		t.Fatal("dictionary shape")
	}
	if model.Platform().Topology.P() != 4 {
		t.Fatal("platform lost")
	}
}

func TestFitAutoTune(t *testing.T) {
	data := demoData(t, 32, 400, 3)
	plat := NewPlatform(2, 4)
	model, err := Fit(data, plat, Options{Epsilon: 0.1, Workers: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep := model.TuningReport()
	if rep == nil || model.L() != rep.Best.L {
		t.Fatal("auto-tune report missing or inconsistent")
	}
	if model.RelError(data) > 0.1+1e-9 {
		t.Fatal("tolerance violated after tuning")
	}
	est := model.PredictIteration()
	if est.Time <= 0 || est.MemoryWordsPerRank <= 0 {
		t.Fatal("degenerate prediction")
	}
}

func TestFitValidation(t *testing.T) {
	data := demoData(t, 16, 50, 5)
	if _, err := Fit(data, NewPlatform(1, 1), Options{Epsilon: 0}); err == nil {
		t.Fatal("epsilon 0 accepted")
	}
	if _, err := Fit(data, Platform{}, Options{Epsilon: 0.1}); err == nil {
		t.Fatal("invalid platform accepted")
	}
}

func TestGramOperatorEndToEnd(t *testing.T) {
	data := demoData(t, 32, 160, 6)
	plat := NewPlatform(1, 4)
	model, err := Fit(data, plat, Options{Epsilon: 0.02, L: 100, Workers: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	op, err := model.GramOperator()
	if err != nil {
		t.Fatal(err)
	}
	dense := DenseGramOperator(data, plat)
	x := make([]float64, 160)
	for i := range x {
		x[i] = rng.New(8).NormFloat64()
	}
	yT := make([]float64, 160)
	yA := make([]float64, 160)
	dense.Apply(x, yT)
	op.Apply(x, yA)
	var num, den float64
	for i := range yT {
		d := yT[i] - yA[i]
		num += d * d
		den += yT[i] * yT[i]
	}
	if math.Sqrt(num/den) > 0.15 {
		t.Fatalf("transformed operator far from dense: %v", math.Sqrt(num/den))
	}
}

func TestSolveLassoViaFacade(t *testing.T) {
	data := demoData(t, 24, 120, 9)
	plat := NewPlatform(1, 2)
	r := rng.New(10)
	y := make([]float64, 24)
	for i := range y {
		y[i] = r.NormFloat64()
	}
	res := SolveLasso(DenseGramOperator(data, plat), data, y, LassoOptions{
		Lambda: 0.05, MaxIters: 300,
	})
	if res.Iters == 0 || res.Objective <= 0 {
		t.Fatalf("degenerate result %+v", res.Objective)
	}
	if res.Stats.TotalFlops == 0 {
		t.Fatal("no distributed cost recorded")
	}
}

func TestSolvePCAViaFacade(t *testing.T) {
	data := demoData(t, 24, 100, 11)
	plat := NewPlatform(1, 2)
	model, err := Fit(data, plat, Options{Epsilon: 0.05, L: 60, Workers: 2, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	op, err := model.GramOperator()
	if err != nil {
		t.Fatal(err)
	}
	res := SolvePCA(op, PCAOptions{Components: 3, Seed: 13})
	if len(res.Eigenvalues) != 3 {
		t.Fatal("wrong component count")
	}
	for i := 1; i < 3; i++ {
		if res.Eigenvalues[i] > res.Eigenvalues[i-1]+1e-9 {
			t.Fatal("eigenvalues unsorted")
		}
	}
}

func TestSolveElasticNetViaFacade(t *testing.T) {
	data := demoData(t, 24, 120, 20)
	plat := NewPlatform(1, 2)
	r := rng.New(21)
	y := make([]float64, 24)
	for i := range y {
		y[i] = r.NormFloat64()
	}
	op := DenseGramOperator(data, plat)
	ridge := SolveElasticNet(op, data, y, ElasticNetOptions{Lambda2: 5, MaxIters: 400})
	lasso := SolveElasticNet(op, data, y, ElasticNetOptions{Lambda1: 5, MaxIters: 400})
	if ridge.Iters == 0 || lasso.Iters == 0 {
		t.Fatal("solves did not run")
	}
	nz := func(x []float64) int {
		n := 0
		for _, v := range x {
			if v != 0 {
				n++
			}
		}
		return n
	}
	if nz(lasso.X) >= nz(ridge.X) {
		t.Fatalf("ℓ₁ variant not sparser: %d vs %d", nz(lasso.X), nz(ridge.X))
	}
}

func TestPredictOnOtherPlatforms(t *testing.T) {
	data := demoData(t, 32, 300, 40)
	model, err := Fit(data, NewPlatform(1, 1), Options{Epsilon: 0.1, L: 90, Workers: 2, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	home := model.PredictIteration()
	if home != model.PredictOn(model.Platform()) {
		t.Fatal("PredictIteration must equal PredictOn(own platform)")
	}
	big := model.PredictOn(NewPlatform(8, 8))
	// More ranks shrink the per-rank sparse work but cross-node words get
	// more expensive; both estimates must at least be positive and the
	// critical flops must not grow.
	if big.Time <= 0 || big.FlopsCritical > home.FlopsCritical {
		t.Fatalf("prediction on 8x8 inconsistent: %+v vs %+v", big, home)
	}
}

func TestModelExtend(t *testing.T) {
	p := dataset.UnionParams{M: 24, N: 160, Ks: []int{3, 4}}
	u, _ := dataset.GenerateUnion(p, rng.New(14))
	base := u.Subset(seq(0, 120))
	extra := u.Subset(seq(120, 160))

	model, err := Fit(base.A, NewPlatform(1, 2), Options{Epsilon: 0.08, L: 70, Workers: 2, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	info, err := model.Extend(extra.A)
	if err != nil {
		t.Fatal(err)
	}
	if info.NewColumns != 40 || model.N() != 160 {
		t.Fatalf("extend bookkeeping: %+v, N=%d", info, model.N())
	}
}

func TestSGDOperatorFacade(t *testing.T) {
	data := demoData(t, 40, 80, 16)
	op := SGDOperator(data, NewPlatform(1, 2), 8, 17)
	x := make([]float64, 80)
	y := make([]float64, 80)
	st := op.Apply(x, y)
	if st.PathWords != 16 {
		t.Fatalf("SGD path words %d", st.PathWords)
	}
}

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
